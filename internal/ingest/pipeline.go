package ingest

import (
	"sort"
	"time"

	"d3t/internal/dissemination"
	"d3t/internal/node"
	"d3t/internal/obs"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// Update is the pipeline's unit of work, re-exported from the protocol
// layer so callers build batches without importing both packages.
type Update = dissemination.Update

// Pipeline is the transport-free sharded ingest engine: a single producer
// offers source updates tick by tick, items hash-partition across shard
// workers, each worker owns a full per-shard set of repository cores (a
// dissemination.Distributed instance) and drains every batch's fan-out
// plan in one zero-delay pass — level by level from the source, one
// ApplyBatch per touched (repository, batch).
//
// The pipeline measures what the hardware can ingest: no delay model, no
// event queue, just the filter pipeline at full speed. Benchmarks and the
// node property tests drive it; the simulator's delay-faithful
// counterpart is RunSim.
//
// The producer side (Offer, Tick, Close) is single-goroutine; the shard
// workers run concurrently behind their batch channels.
type Pipeline struct {
	cfg     Config
	overlay *tree.Overlay
	shards  []*pipeShard
	tick    int
	start   time.Time
	closed  bool
}

// pipeShard is one worker: its own protocol instance (hence its own set
// of repository cores), its batch inbox, and the producer-side pending
// window. Worker-local counters are read only after done closes.
type pipeShard struct {
	proto *dissemination.Distributed
	obs   *obs.Tree
	in    chan []Update
	done  chan struct{}

	// pend is the producer's open batch window; pendIdx coalesces
	// same-item updates within it (last value wins, first-arrival order).
	// lastOut tracks the last value flushed per item so a net-zero window
	// (the value returned to its pre-window level) folds away entirely —
	// the same rule CoalesceTrace applies to recorded traces.
	pend    []Update
	pendIdx map[string]int
	lastOut map[string]float64

	updates, coalesced, batches uint64
	applies, forwards, checks   uint64
}

// NewPipeline builds and starts a pipeline over the overlay. Every shard
// seeds its cores from the initial values, as if the overlay started
// fully synchronized.
func NewPipeline(o *tree.Overlay, initial map[string]float64, cfg Config) *Pipeline {
	p := &Pipeline{
		cfg:     cfg,
		overlay: o,
		shards:  make([]*pipeShard, cfg.ShardCount()),
		start:   time.Now(),
	}
	for i := range p.shards {
		s := &pipeShard{
			proto:   dissemination.NewDistributed(),
			obs:     cfg.Obs,
			in:      make(chan []Update, 64),
			done:    make(chan struct{}),
			pendIdx: make(map[string]int),
			lastOut: make(map[string]float64, len(initial)),
		}
		s.proto.Init(o, initial)
		if cfg.Obs != nil {
			s.proto.SetObs(cfg.Obs)
		}
		for item, v := range initial {
			s.lastOut[item] = v
		}
		p.shards[i] = s
		go s.run()
	}
	return p
}

// run is the worker loop: drain batches until the inbox closes.
func (s *pipeShard) run() {
	defer close(s.done)
	for b := range s.in {
		s.drain(b)
	}
}

// drain pushes one batch through the shard's overlay cores, level by
// level: apply at the source, collect the item-tagged forwards, group
// them per dependent, and repeat until the fan-out plan is exhausted.
func (s *pipeShard) drain(b []Update) {
	s.batches++
	s.updates += uint64(len(b))
	cur := map[repository.ID][]Update{repository.SourceID: b}
	var ids []repository.ID
	for len(cur) > 0 {
		ids = ids[:0]
		for id := range cur {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		next := make(map[repository.ID][]Update)
		for _, id := range ids {
			batch := cur[id]
			s.applies += uint64(len(batch))
			s.obs.Node(id).Batch(len(batch))
			fwds, checks := s.proto.ApplyBatch(id, batch)
			s.checks += uint64(checks)
			s.forwards += uint64(len(fwds))
			for _, f := range fwds {
				next[f.To] = append(next[f.To], Update{Item: f.Item, Value: f.Value})
			}
		}
		cur = next
	}
}

// Offer stages one source update into its shard's open batch window,
// coalescing over an earlier same-item update in the window.
func (p *Pipeline) Offer(item string, v float64) {
	s := p.shards[ShardOf(item, len(p.shards))]
	if i, ok := s.pendIdx[item]; ok {
		s.pend[i].Value = v
		s.coalesced++
		return
	}
	s.pendIdx[item] = len(s.pend)
	s.pend = append(s.pend, Update{Item: item, Value: v})
}

// Tick advances the batch clock by one source tick; when a window of
// BatchTicks completes, every shard's staged batch flushes to its worker.
func (p *Pipeline) Tick() {
	p.tick++
	if p.tick%p.cfg.Window() == 0 {
		p.Flush()
	}
}

// Flush sends every shard's staged batch to its worker, regardless of
// window position.
func (p *Pipeline) Flush() {
	for _, s := range p.shards {
		if len(s.pend) == 0 {
			continue
		}
		b := make([]Update, 0, len(s.pend))
		for _, u := range s.pend {
			if last, ok := s.lastOut[u.Item]; ok && last == u.Value {
				s.coalesced++ // net-zero window: nothing to disseminate
				continue
			}
			s.lastOut[u.Item] = u.Value
			b = append(b, u)
		}
		s.pend = s.pend[:0]
		for item := range s.pendIdx {
			delete(s.pendIdx, item)
		}
		if len(b) > 0 {
			s.in <- b
		}
	}
}

// Close flushes the open window, stops the workers, waits for them to
// drain, and returns the merged run statistics. The pipeline must not be
// offered to afterwards.
func (p *Pipeline) Close() Stats {
	if p.closed {
		return p.statsLocked()
	}
	p.Flush()
	p.closed = true
	for _, s := range p.shards {
		close(s.in)
	}
	for _, s := range p.shards {
		<-s.done
	}
	return p.statsLocked()
}

// statsLocked merges the worker counters; valid once every worker is
// done.
func (p *Pipeline) statsLocked() Stats {
	st := Stats{Shards: p.cfg.ShardCount(), BatchTicks: p.cfg.Window()}
	for _, s := range p.shards {
		st.Updates += s.updates
		st.Coalesced += s.coalesced
		st.Batches += s.batches
		st.Applies += s.applies
		st.Forwards += s.forwards
		st.Checks += s.checks
	}
	st.finish(time.Since(p.start))
	return st
}

// Decisions reports every overlay node's per-item forward/suppress
// decision totals, merged across shards (whose item partitions are
// disjoint). Call it after Close; nodes with no decisions are omitted.
func (p *Pipeline) Decisions() map[repository.ID]map[string]node.Decisions {
	out := make(map[repository.ID]map[string]node.Decisions)
	for _, n := range p.overlay.Nodes {
		for _, s := range p.shards {
			for item, d := range s.proto.Core(n.ID).EdgeDecisions() {
				m := out[n.ID]
				if m == nil {
					m = make(map[string]node.Decisions)
					out[n.ID] = m
				}
				md := m[item]
				md.Forwarded += d.Forwarded
				md.Suppressed += d.Suppressed
				m[item] = md
			}
		}
	}
	return out
}
