package ingest

import (
	"math"
	"testing"

	"d3t/internal/dissemination"
	"d3t/internal/netsim"
	"d3t/internal/node"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// world builds one deterministic mid-size overlay + stock trace set.
func world(t testing.TB, items, repos, ticks int, seed int64) (*tree.Overlay, []*trace.Trace, map[string]float64) {
	t.Helper()
	traces := trace.GenerateSet(items, ticks, sim.Second, seed)
	o, initial := worldOver(t, traces, repos, seed)
	return o, traces, initial
}

// worldOver builds a deterministic overlay interested in the given trace
// set's items.
func worldOver(t testing.TB, traces []*trace.Trace, repos int, seed int64) (*tree.Overlay, map[string]float64) {
	t.Helper()
	names := make([]string, len(traces))
	initial := make(map[string]float64, len(traces))
	for i, tr := range traces {
		names[i] = tr.Item
		initial[tr.Item] = tr.Ticks[0].Value
	}
	rs := make([]*repository.Repository, repos)
	for i := range rs {
		rs[i] = repository.New(repository.ID(i+1), 4)
	}
	repository.AssignNeeds(rs, repository.Workload{
		Items:         names,
		SubscribeProb: 0.6,
		StringentFrac: 0.4,
		Seed:          seed,
	})
	o, err := (&tree.LeLA{Seed: seed}).Build(netsim.Uniform(repos, sim.Millisecond), rs, 4)
	if err != nil {
		t.Fatal(err)
	}
	return o, initial
}

func TestShardOf(t *testing.T) {
	if got := ShardOf("anything", 1); got != 0 {
		t.Fatalf("ShardOf(_, 1) = %d, want 0", got)
	}
	if got := ShardOf("anything", 0); got != 0 {
		t.Fatalf("ShardOf(_, 0) = %d, want 0", got)
	}
	// Stable and in range.
	for _, shards := range []int{2, 4, 8} {
		seen := make(map[int]bool)
		for _, item := range []string{"I0", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8", "I9"} {
			s := ShardOf(item, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", item, shards, s)
			}
			if s != ShardOf(item, shards) {
				t.Fatalf("ShardOf(%q, %d) unstable", item, shards)
			}
			seen[s] = true
		}
		if len(seen) < 2 {
			t.Errorf("ShardOf over 10 items used %d of %d shards; the hash does not spread", len(seen), shards)
		}
	}
}

func TestCoalesceTrace(t *testing.T) {
	tr := &trace.Trace{Item: "X", Ticks: []trace.Tick{
		{At: 0, Value: 10},
		{At: 1, Value: 11}, // window 1: superseded
		{At: 2, Value: 12}, // window 1: survivor
		{At: 3, Value: 12}, // window 2: quiet
		{At: 4, Value: 12},
		{At: 5, Value: 15}, // window 3: up...
		{At: 6, Value: 12}, // ...and back: net-zero window, all folded
		{At: 7, Value: 20}, // window 4: survivor
		{At: 8, Value: 20}, // quiet tail preserves the horizon via a guard
	}}
	got, folded := CoalesceTrace(tr, 2)
	want := []trace.Tick{{At: 0, Value: 10}, {At: 2, Value: 12}, {At: 7, Value: 20}, {At: 8, Value: 20}}
	if folded != 3 {
		t.Errorf("folded = %d, want 3 (the 11, and the 15/12 round trip)", folded)
	}
	if len(got.Ticks) != len(want) {
		t.Fatalf("coalesced ticks = %v, want %v", got.Ticks, want)
	}
	for i := range want {
		if got.Ticks[i] != want[i] {
			t.Errorf("tick %d = %v, want %v", i, got.Ticks[i], want[i])
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("coalesced trace invalid: %v", err)
	}
	if got.Duration() != tr.Duration() {
		t.Errorf("horizon moved: %v, want %v", got.Duration(), tr.Duration())
	}

	// Window <= 1 is the identity.
	if same, n := CoalesceTrace(tr, 1); same != tr || n != 0 {
		t.Errorf("CoalesceTrace(_, 1) did not return the input unchanged")
	}
}

// TestRunSimShardedMatchesSequential is the partition-exactness guarantee:
// the sharded runner must reproduce the sequential run's per-(repo, item)
// decisions exactly and its aggregates within floating-point summation
// order.
func TestRunSimShardedMatchesSequential(t *testing.T) {
	o, traces, _ := world(t, 8, 12, 300, 7)
	seq, seqStats, seqProtos, err := RunSim(o, traces, func() dissemination.Protocol { return dissemination.NewDistributed() },
		dissemination.Config{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	o2, traces2, _ := world(t, 8, 12, 300, 7)
	sh, shStats, shProtos, err := RunSim(o2, traces2, func() dissemination.Protocol { return dissemination.NewDistributed() },
		dissemination.Config{}, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqProtos) != 1 || len(shProtos) != 4 {
		t.Fatalf("protocol instances = %d/%d, want 1/4", len(seqProtos), len(shProtos))
	}
	if seq.Stats != sh.Stats {
		t.Errorf("work stats diverge: sequential %+v, sharded %+v", seq.Stats, sh.Stats)
	}
	if seq.Horizon != sh.Horizon {
		t.Errorf("horizon %v vs %v", seq.Horizon, sh.Horizon)
	}
	if d := math.Abs(seq.Report.SystemFidelity() - sh.Report.SystemFidelity()); d > 1e-12 {
		t.Errorf("fidelity diverges by %g: %v vs %v", d, seq.Report.SystemFidelity(), sh.Report.SystemFidelity())
	}
	if d := math.Abs(seq.SourceUtilization - sh.SourceUtilization); d > 1e-9 {
		t.Errorf("source utilization diverges: %v vs %v", seq.SourceUtilization, sh.SourceUtilization)
	}
	if seqStats.Updates != shStats.Updates || seqStats.Forwards != shStats.Forwards {
		t.Errorf("ingest stats diverge: %+v vs %+v", seqStats, shStats)
	}

	// Decision-level parity: union the sharded cores' decisions and
	// compare with the sequential ones per (repo, item).
	want := decisionsOf(o, seqProtos)
	got := decisionsOf(o2, shProtos)
	if len(want) == 0 {
		t.Fatal("sequential run made no decisions; the test is vacuous")
	}
	if len(want) != len(got) {
		t.Fatalf("decision sets differ in size: %d vs %d", len(want), len(got))
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("decisions[%s] = %+v, want %+v", k, got[k], w)
		}
	}
}

// TestRunSimBatchCoalesces checks that batching reduces disseminated
// updates on a volatile workload and still ends every repository at the
// final source value.
func TestRunSimBatchCoalesces(t *testing.T) {
	o, traces, _ := world(t, 6, 10, 400, 11)
	plain, _, _, err := RunSim(o, traces, func() dissemination.Protocol { return dissemination.NewDistributed() },
		dissemination.Config{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	o2, traces2, _ := world(t, 6, 10, 400, 11)
	batched, st, _, err := RunSim(o2, traces2, func() dissemination.Protocol { return dissemination.NewDistributed() },
		dissemination.Config{}, Config{BatchTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Coalesced == 0 {
		t.Error("a 5-tick window over a random walk coalesced nothing")
	}
	if batched.Stats.SourceTicks >= plain.Stats.SourceTicks {
		t.Errorf("batched run disseminated %d source ticks, plain %d; batching should shrink it",
			batched.Stats.SourceTicks, plain.Stats.SourceTicks)
	}
	if batched.Horizon != plain.Horizon {
		t.Errorf("batching moved the horizon: %v vs %v", batched.Horizon, plain.Horizon)
	}
	if st.Updates != batched.Stats.SourceTicks {
		t.Errorf("ingest Updates = %d, want the run's %d source ticks", st.Updates, batched.Stats.SourceTicks)
	}
}

func TestRunSimRejectsUnshardableModels(t *testing.T) {
	o, traces, _ := world(t, 4, 6, 50, 3)
	if _, _, _, err := RunSim(o, traces, func() dissemination.Protocol { return dissemination.NewDistributed() },
		dissemination.Config{Queueing: true}, Config{Shards: 2}); err == nil {
		t.Error("sharded queueing run accepted; the serial-server station couples items")
	}
}

// decisionsOf flattens the protocols' per-(repo, item) decision tallies,
// keyed by "repo/item".
func decisionsOf(o *tree.Overlay, protos []dissemination.Protocol) map[string]node.Decisions {
	out := make(map[string]node.Decisions)
	for _, p := range protos {
		d, ok := p.(*dissemination.Distributed)
		if !ok {
			continue
		}
		for _, n := range o.Nodes {
			for item, dec := range d.Core(n.ID).EdgeDecisions() {
				k := n.ID.String() + "/" + item
				cur := out[k]
				cur.Forwarded += dec.Forwarded
				cur.Suppressed += dec.Suppressed
				out[k] = cur
			}
		}
	}
	return out
}
