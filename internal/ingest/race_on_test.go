//go:build race

package ingest

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation inflates channel/mutex costs and makes
// wall-clock speedup assertions meaningless.
const raceEnabled = true
