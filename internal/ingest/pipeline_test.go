package ingest

import (
	"runtime"
	"testing"
	"time"

	"d3t/internal/sim"
	"d3t/internal/trace"
)

// feedPipeline pushes every value-changing tick of the trace set through
// the pipeline in tick order and closes it.
func feedPipeline(p *Pipeline, traces []*trace.Trace, ticks int) Stats {
	last := make(map[string]float64, len(traces))
	for _, tr := range traces {
		last[tr.Item] = tr.Ticks[0].Value
	}
	for i := 1; i < ticks; i++ {
		for _, tr := range traces {
			if i >= tr.Len() {
				continue
			}
			v := tr.Ticks[i].Value
			if v == last[tr.Item] {
				continue
			}
			last[tr.Item] = v
			p.Offer(tr.Item, v)
		}
		p.Tick()
	}
	return p.Close()
}

// TestPipelineShardDecisionParity: the sharded pipeline must make exactly
// the decision set of the single-shard pipeline — the per-item purity of
// the filter chain, exercised through concurrent workers.
func TestPipelineShardDecisionParity(t *testing.T) {
	o, traces, initial := world(t, 10, 12, 300, 21)
	p1 := NewPipeline(o, initial, Config{Shards: 1})
	st1 := feedPipeline(p1, traces, 300)

	o2, traces2, initial2 := world(t, 10, 12, 300, 21)
	p8 := NewPipeline(o2, initial2, Config{Shards: 8})
	st8 := feedPipeline(p8, traces2, 300)

	if st1.Updates == 0 {
		t.Fatal("pipeline saw no updates; the test is vacuous")
	}
	if st1.Updates != st8.Updates || st1.Applies != st8.Applies || st1.Forwards != st8.Forwards || st1.Checks != st8.Checks {
		t.Errorf("work diverges across shard counts: %+v vs %+v", st1, st8)
	}

	d1, d8 := p1.Decisions(), p8.Decisions()
	if len(d1) == 0 {
		t.Fatal("no decisions recorded")
	}
	if len(d1) != len(d8) {
		t.Fatalf("decision node sets differ: %d vs %d", len(d1), len(d8))
	}
	for id, items := range d1 {
		for item, want := range items {
			if got := d8[id][item]; got != want {
				t.Errorf("node %v item %s: shards=8 decided %+v, shards=1 decided %+v", id, item, got, want)
			}
		}
	}
}

// TestPipelineCoalesces: a batched window folds same-item updates and
// the survivors equal the coalesced-trace schedule.
func TestPipelineCoalesces(t *testing.T) {
	o, traces, initial := world(t, 6, 10, 200, 31)
	p := NewPipeline(o, initial, Config{BatchTicks: 5})
	st := feedPipeline(p, traces, 200)
	if st.Coalesced == 0 {
		t.Fatal("5-tick windows over random walks coalesced nothing")
	}

	// The pipeline's survivor count matches CoalesceTraces' schedule.
	feed, folded := CoalesceTraces(traces, 5)
	var want uint64
	for _, tr := range feed {
		last := tr.Ticks[0].Value
		for _, tk := range tr.Ticks[1:] {
			if tk.Value != last {
				want++
				last = tk.Value
			}
		}
	}
	if st.Updates != want {
		t.Errorf("pipeline disseminated %d updates, coalesced schedule has %d", st.Updates, want)
	}
	if st.Coalesced != folded {
		t.Errorf("pipeline coalesced %d, CoalesceTraces folded %d", st.Coalesced, folded)
	}
}

// TestShardedIngestSpeedup asserts the tentpole's throughput claim where
// the hardware can express it: with enough cores, 8 shards must ingest at
// least twice as fast as one. On narrow machines parallel shards cannot
// beat a single core, so the test skips rather than measure noise.
func TestShardedIngestSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates the synchronization cost being measured")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d; parallel speedup needs >= 4 cores", runtime.GOMAXPROCS(0))
	}
	const items, repos, ticks = 64, 40, 1500
	gen, err := trace.LookupWorkload("bursty")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := gen.Generate(trace.WorkloadSpec{Items: items, Ticks: ticks, Interval: sim.Second, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}

	run := func(shards int) float64 {
		o, initial := worldOver(t, traces, repos, 55)
		p := NewPipeline(o, initial, Config{Shards: shards})
		start := time.Now()
		st := feedPipeline(p, traces, ticks)
		if st.Updates == 0 {
			t.Fatal("no updates ingested")
		}
		return float64(st.Updates) / time.Since(start).Seconds()
	}
	single := run(1)
	sharded := run(8)
	t.Logf("throughput: 1 shard %.0f updates/s, 8 shards %.0f updates/s (%.2fx)", single, sharded, sharded/single)
	if sharded < 2*single {
		t.Errorf("8 shards = %.2fx single-shard throughput, want >= 2x", sharded/single)
	}
}
