package ingest

import (
	"fmt"
	"testing"

	"d3t/internal/sim"
	"d3t/internal/trace"
)

// BenchmarkShardedIngest measures the pipeline's ingest throughput on the
// bursty workload across shard counts — the tentpole claim is that 8
// shards sustain at least 2x single-shard throughput on a machine with
// cores to run them (items are hash-partitioned, workers share nothing).
// The batch=5 variants add window coalescing, which also lifts offered
// throughput on a single core by shrinking the applied update stream.
func BenchmarkShardedIngest(b *testing.B) {
	const items, repos, ticks = 64, 40, 1200
	gen, err := trace.LookupWorkload("bursty")
	if err != nil {
		b.Fatal(err)
	}
	traces, err := gen.Generate(trace.WorkloadSpec{Items: items, Ticks: ticks, Interval: sim.Second, Seed: 55})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []Config{
		{Shards: 1},
		{Shards: 2},
		{Shards: 4},
		{Shards: 8},
		{Shards: 1, BatchTicks: 5},
		{Shards: 8, BatchTicks: 5},
	} {
		name := fmt.Sprintf("shards=%d,batch=%d", cfg.ShardCount(), cfg.Window())
		b.Run(name, func(b *testing.B) {
			var st Stats
			for i := 0; i < b.N; i++ {
				o, initial := worldOver(b, traces, repos, 55)
				p := NewPipeline(o, initial, cfg)
				st = feedPipeline(p, traces, ticks)
			}
			b.ReportMetric(float64(st.Updates)/st.Elapsed.Seconds(), "updates/s")
			b.ReportMetric(float64(st.Coalesced), "coalesced")
		})
	}
}
