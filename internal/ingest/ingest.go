// Package ingest is the sharded, batched update pipeline: the scaling
// layer between a source's raw update stream and the per-repository node
// cores every runtime shares.
//
// The paper's dissemination trees are strictly per-item — an update of
// item X touches only X's parent chain, X's filter state, X's trackers —
// so independent items never contend. The single-threaded Apply path of
// the node core wastes that independence; this package exploits it with
// three mechanisms, each usable alone:
//
//   - Sharding: items are hash-partitioned (ShardOf, FNV-1a) across a
//     configurable worker pool. Every (repository, item) state lives in
//     exactly one shard, so workers proceed without locks and the
//     per-item forward/suppress decision sequence — the parity guarantee
//     of internal/node — is bit-identical for any shard count.
//   - Batching: updates arriving within a window of BatchTicks source
//     ticks move as one batch — one channel send, one lock acquisition,
//     one wire frame — instead of per-update operations.
//   - Coalescing: same-item updates within one batch window collapse to
//     the newest value (CoalesceTrace). A superseded intermediate value
//     is never disseminated; the survivor is filtered exactly as if it
//     arrived alone.
//
// Three consumers re-seat on it: the simulator partitions a run's items
// across parallel sub-simulations (RunSim), the goroutine runtime splits
// each node into per-shard cores fed by batch channels (live.Options.
// Shards), and the TCP runtime carries a whole batch in one frame
// (netio's multi-update frame kind). The Pipeline type in this package is
// the transport-free embodiment used by benchmarks and property tests.
package ingest

import (
	"time"

	"d3t/internal/obs"
	"d3t/internal/trace"
)

// Config parameterizes the ingest pipeline.
type Config struct {
	// Shards is the worker-pool width items are hash-partitioned across.
	// Values <= 1 mean one shard — the exact sequential behavior every
	// registry figure is pinned to.
	Shards int
	// BatchTicks is the coalescing window in source ticks: updates of the
	// same item within one window collapse to the newest value, and a
	// window's survivors move as one batch. Values <= 1 disable batching
	// (every update moves alone).
	BatchTicks int
	// Obs, when set, records per-node batch sizes as the pipeline drains
	// (the delay-faithful RunSim path instead takes the tree through
	// dissemination.Config.Obs). Observation is passive.
	Obs *obs.Tree
}

// ShardCount normalizes Config.Shards to the effective worker count.
func (c Config) ShardCount() int {
	if c.Shards <= 1 {
		return 1
	}
	return c.Shards
}

// Window normalizes Config.BatchTicks to the effective window length.
func (c Config) Window() int {
	if c.BatchTicks <= 1 {
		return 1
	}
	return c.BatchTicks
}

// Enabled reports whether the config asks for anything beyond the plain
// sequential per-update path.
func (c Config) Enabled() bool { return c.ShardCount() > 1 || c.Window() > 1 }

// Stats counts the work an ingest run performed.
type Stats struct {
	// Shards and BatchTicks echo the effective configuration.
	Shards     int
	BatchTicks int
	// Updates is the number of value-changing source updates offered to
	// the pipeline (after coalescing, the survivors; Coalesced counts the
	// folded ones, so Updates+Coalesced is the raw change count).
	Updates uint64
	// Coalesced counts updates folded into a newer same-item update
	// within one batch window.
	Coalesced uint64
	// Batches counts batch flushes drained by shard workers.
	Batches uint64
	// Applies counts node-core Apply calls executed across the overlay.
	Applies uint64
	// Forwards counts update copies pushed over overlay edges; Checks
	// counts per-dependent filter decisions.
	Forwards uint64
	Checks   uint64
	// Elapsed is the wall-clock span of the run; UpdatesPerSec is
	// Updates/Elapsed — the pipeline's measured ingest throughput. Both
	// are wall-clock observations, not simulation results: deterministic
	// outputs never derive from them.
	Elapsed       time.Duration
	UpdatesPerSec float64
}

// finish stamps the wall-clock aggregates.
func (s *Stats) finish(elapsed time.Duration) {
	s.Elapsed = elapsed
	if secs := elapsed.Seconds(); secs > 0 {
		s.UpdatesPerSec = float64(s.Updates) / secs
	}
}

// ShardOf maps an item to its shard: FNV-1a over the item name, mod the
// shard count. Every layer — pipeline workers, the sharded simulator,
// live's per-shard channels — must use this one mapping, so a batch
// produced by a parent shard lands in the same shard at the child.
func ShardOf(item string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h = (h ^ uint32(item[i])) * 16777619
	}
	return int(h % uint32(shards))
}

// CoalesceTrace folds a trace's value changes through batch windows of
// batchTicks ticks: within each window only the last value survives, at
// the time it appeared; changes it superseded are counted as coalesced.
// A window whose net change is zero (the value returned to its pre-window
// level) emits nothing. The trace's observation horizon is preserved by a
// final no-change guard tick at the original end time, so fidelity
// denominators match the uncoalesced run. With batchTicks <= 1 (or a
// trivial trace) the input is returned unchanged.
//
// The result is a pure function of the inputs: every backend that feeds
// from a coalesced trace set disseminates the identical update sequence,
// which is what keeps cross-backend decision parity intact under
// batching.
func CoalesceTrace(tr *trace.Trace, batchTicks int) (*trace.Trace, uint64) {
	if batchTicks <= 1 || tr.Len() <= 1 {
		return tr, 0
	}
	out := &trace.Trace{Item: tr.Item, Ticks: []trace.Tick{tr.Ticks[0]}}
	last := tr.Ticks[0].Value
	var folded uint64
	for w := 1; w < tr.Len(); w += batchTicks {
		end := w + batchTicks
		if end > tr.Len() {
			end = tr.Len()
		}
		changes, lastChange := 0, -1
		cur := last
		for i := w; i < end; i++ {
			if tr.Ticks[i].Value != cur {
				cur = tr.Ticks[i].Value
				lastChange = i
				changes++
			}
		}
		if lastChange < 0 {
			continue // quiet window
		}
		if cur == last {
			folded += uint64(changes) // net-zero window: all folded
			continue
		}
		out.Ticks = append(out.Ticks, tr.Ticks[lastChange])
		last = cur
		folded += uint64(changes - 1)
	}
	if endAt := tr.Ticks[tr.Len()-1].At; out.Ticks[len(out.Ticks)-1].At != endAt {
		out.Ticks = append(out.Ticks, trace.Tick{At: endAt, Value: last})
	}
	return out, folded
}

// CoalesceTraces applies CoalesceTrace to a whole trace set, returning
// the coalesced set (the input itself when batchTicks <= 1) and the total
// folded-update count.
func CoalesceTraces(traces []*trace.Trace, batchTicks int) ([]*trace.Trace, uint64) {
	if batchTicks <= 1 {
		return traces, 0
	}
	out := make([]*trace.Trace, len(traces))
	var folded uint64
	for i, tr := range traces {
		c, n := CoalesceTrace(tr, batchTicks)
		out[i] = c
		folded += n
	}
	return out, folded
}
