package ingest

import (
	"fmt"
	"sync"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/dissemination"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// RunSim is the delay-faithful sharded run: it coalesces the trace set
// through the batch window, hash-partitions the items across shards, and
// runs one sub-simulation per shard in parallel — each over the full
// overlay and the full time base but a disjoint item partition
// (dissemination.Config.ItemFilter). Because the paper's dissemination is
// strictly per-item in the latency delay model, the partition is exact:
// every per-(repository, item) fidelity, delivery time and filter
// decision is identical to the sequential run's, and the merged
// aggregates differ from it by at most floating-point summation order.
//
// newProtocol builds one protocol instance per shard (instances hold
// per-run core state and must not be shared). The instances are returned
// for decision-level instrumentation; with one shard the plain
// dissemination.Run path is used unchanged.
//
// The queueing node model shares a serial-server station across items, so
// it cannot be partitioned; RunSim rejects it with more than one shard.
func RunSim(o *tree.Overlay, traces []*trace.Trace, newProtocol func() dissemination.Protocol,
	cfg dissemination.Config, icfg Config) (*dissemination.Result, *Stats, []dissemination.Protocol, error) {

	shards := icfg.ShardCount()
	if cfg.Queueing && shards > 1 {
		return nil, nil, nil, fmt.Errorf("ingest: the queueing node model couples items through shared stations and cannot be sharded")
	}
	if cfg.Observer != nil && shards > 1 {
		return nil, nil, nil, fmt.Errorf("ingest: run observers see events in global time order and cannot be sharded")
	}

	start := time.Now()
	feed, folded := CoalesceTraces(traces, icfg.BatchTicks)
	stats := &Stats{Shards: shards, BatchTicks: icfg.Window(), Coalesced: folded}

	if shards == 1 {
		p := newProtocol()
		res, err := dissemination.Run(o, feed, p, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		stats.Updates = res.Stats.SourceTicks
		stats.Forwards = res.Stats.Messages
		stats.Checks = res.Stats.SourceChecks + res.Stats.RepoChecks
		stats.Applies = res.Stats.SourceTicks + res.Stats.Deliveries
		stats.finish(time.Since(start))
		return res, stats, []dissemination.Protocol{p}, nil
	}

	protos := make([]dissemination.Protocol, shards)
	results := make([]*dissemination.Result, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		protos[s] = newProtocol()
		shardCfg := cfg
		shard := s
		shardCfg.ItemFilter = func(item string) bool { return ShardOf(item, shards) == shard }
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[shard], errs[shard] = dissemination.Run(o, feed, protos[shard], shardCfg)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}

	merged := &dissemination.Result{
		Protocol: protos[0].Name(),
		Report:   coherency.NewReport(),
	}
	for _, r := range results {
		merged.Report.Merge(r.Report)
		merged.Stats.Messages += r.Stats.Messages
		merged.Stats.SourceChecks += r.Stats.SourceChecks
		merged.Stats.RepoChecks += r.Stats.RepoChecks
		merged.Stats.Deliveries += r.Stats.Deliveries
		merged.Stats.SourceTicks += r.Stats.SourceTicks
		merged.Stats.Events += r.Stats.Events
		if r.Horizon > merged.Horizon {
			merged.Horizon = r.Horizon
		}
	}
	// Per-shard utilization shares one horizon (it derives from the full
	// trace set in every shard), so the source's busy fractions add.
	for _, r := range results {
		merged.SourceUtilization += r.SourceUtilization
	}
	stats.Updates = merged.Stats.SourceTicks
	stats.Forwards = merged.Stats.Messages
	stats.Checks = merged.Stats.SourceChecks + merged.Stats.RepoChecks
	stats.Applies = merged.Stats.SourceTicks + merged.Stats.Deliveries
	stats.finish(time.Since(start))
	return merged, stats, protos, nil
}
