package query

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want Query
	}{
		{"avg(w=5;A,B,C)@0.05", Query{Kind: Avg, Items: []string{"A", "B", "C"}, Window: 5, Tolerance: 0.05}},
		{"sum(A,B)@1", Query{Kind: Sum, Items: []string{"A", "B"}, Window: 1, Tolerance: 1}},
		{"min(w=2;A)@0.5", Query{Kind: Min, Items: []string{"A"}, Window: 2, Tolerance: 0.5}},
		{"max(A,B,C,D)@2", Query{Kind: Max, Items: []string{"A", "B", "C", "D"}, Window: 1, Tolerance: 2}},
		{"diff(A,B)>0@0.1!client", Query{Kind: Diff, Items: []string{"A", "B"}, Window: 1, Tolerance: 0.1,
			Pred: &Pred{Op: '>', X: 0}, Placement: PlaceClient}},
		{"ratio(A,B)<1.5@0.2", Query{Kind: Ratio, Items: []string{"A", "B"}, Window: 1, Tolerance: 0.2,
			Pred: &Pred{Op: '<', X: 1.5}}},
	}
	for _, c := range cases {
		q, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if q.Kind != c.want.Kind || q.Window != c.want.Window || q.Tolerance != c.want.Tolerance ||
			q.Placement != c.want.Placement || len(q.Items) != len(c.want.Items) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, q, c.want)
		}
		for i := range c.want.Items {
			if q.Items[i] != c.want.Items[i] {
				t.Errorf("Parse(%q) items = %v, want %v", c.spec, q.Items, c.want.Items)
			}
		}
		if (q.Pred == nil) != (c.want.Pred == nil) {
			t.Errorf("Parse(%q) pred = %v, want %v", c.spec, q.Pred, c.want.Pred)
		} else if q.Pred != nil && (q.Pred.Op != c.want.Pred.Op || q.Pred.X != c.want.Pred.X) {
			t.Errorf("Parse(%q) pred = %+v, want %+v", c.spec, *q.Pred, *c.want.Pred)
		}
		// The canonical rendering re-parses to the same query.
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", c.spec, q.String(), err)
		}
		if back.String() != q.String() {
			t.Errorf("round trip %q -> %q -> %q", c.spec, q.String(), back.String())
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"", "avg", "avg()@0.1", "avg(A)@", "avg(A)@0", "avg(A)@-1", "avg(A)",
		"mean(A)@0.1", "avg(w=0;A)@0.1", "avg(w=x;A)@0.1", "avg(A,,B)@0.1",
		"avg(A,A)@0.1", "diff(A)@0.1", "diff(A,B,C)@0.1", "avg(A)=3@0.1",
		"avg(A)>@0.1", "avg(A@0.1",
	}
	for _, spec := range bad {
		if q, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted: %+v", spec, q)
		}
	}
}

func TestAllocation(t *testing.T) {
	cases := []struct {
		spec string
		want float64
	}{
		{"sum(A,B,C,D)@1", 0.25},
		{"avg(A,B,C,D)@1", 1},
		{"min(A,B)@0.5", 0.5},
		{"max(A,B)@0.5", 0.5},
		{"diff(A,B)@1", 0.5},
		{"ratio(A,B)@1", 0.5},
	}
	for _, c := range cases {
		q, err := Parse(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := float64(q.InputTolerance()); got != c.want {
			t.Errorf("%s: allocated %v, want %v", c.spec, got, c.want)
		}
		for x, tol := range q.Wants() {
			if float64(tol) != c.want {
				t.Errorf("%s: Wants[%s] = %v, want %v", c.spec, x, tol, c.want)
			}
		}
	}
}

func TestEvalInstantKinds(t *testing.T) {
	feed := func(spec string, vals map[string]float64) float64 {
		q, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEval(q)
		for _, x := range q.Items {
			e.Observe(x, vals[x], 0)
		}
		r, ok := e.Result()
		if !ok {
			t.Fatalf("%s: result undefined after all inputs", spec)
		}
		return r
	}
	vals := map[string]float64{"A": 4, "B": 2, "C": 6}
	if r := feed("sum(A,B,C)@1", vals); r != 12 {
		t.Errorf("sum = %v", r)
	}
	if r := feed("avg(A,B,C)@1", vals); r != 4 {
		t.Errorf("avg = %v", r)
	}
	if r := feed("min(A,B,C)@1", vals); r != 2 {
		t.Errorf("min = %v", r)
	}
	if r := feed("max(A,B,C)@1", vals); r != 6 {
		t.Errorf("max = %v", r)
	}
	if r := feed("diff(A,B)@1", vals); r != 2 {
		t.Errorf("diff = %v", r)
	}
	if r := feed("ratio(A,B)@1", vals); r != 2 {
		t.Errorf("ratio = %v", r)
	}
}

func TestEvalCounters(t *testing.T) {
	q, _ := Parse("sum(A,B)@1")
	e := NewEval(q)
	if _, ok, _ := e.Observe("A", 1, 0); ok {
		t.Error("result defined with B missing")
	}
	if _, ok, changed := e.Observe("B", 2, 0); !ok || !changed {
		t.Error("first complete observation should define and change the result")
	}
	if _, ok, changed := e.Observe("A", 1, 1); !ok || changed {
		t.Error("same value should recompute without changing the result")
	}
	e.Observe("ZZZ", 9, 1) // not a member: ignored entirely
	if e.Evals() != 3 || e.Recomputes() != 2 {
		t.Errorf("counters evals=%d recomputes=%d, want 3 and 2", e.Evals(), e.Recomputes())
	}
	// Seeding counts neither.
	e2 := NewEval(q)
	e2.Seed("A", 1, 0)
	e2.Seed("B", 2, 0)
	if r, ok := e2.Result(); !ok || r != 3 {
		t.Errorf("seeded result = %v, %v", r, ok)
	}
	if e2.Evals() != 0 || e2.Recomputes() != 0 {
		t.Error("seeding counted as evaluation")
	}
}

func TestEvalWindow(t *testing.T) {
	// avg over one item with w=3 is a moving average of the item itself.
	q, _ := Parse("avg(w=3;A)@1")
	e := NewEval(q)
	e.Observe("A", 3, 0) // window [3]
	if r, _ := e.Result(); r != 3 {
		t.Errorf("tick 0: %v", r)
	}
	e.Observe("A", 6, 1) // window [3 6]
	if r, _ := e.Result(); r != 4.5 {
		t.Errorf("tick 1: %v", r)
	}
	e.Observe("A", 9, 2) // window [3 6 9]
	if r, _ := e.Result(); r != 6 {
		t.Errorf("tick 2: %v", r)
	}
	e.Observe("A", 0, 3) // window [6 9 0]
	if r, _ := e.Result(); r != 5 {
		t.Errorf("tick 3: %v", r)
	}
	// A gap carries the last aggregate: ticks 4,5 hold 0.
	e.Observe("A", 12, 5) // window [0 0 12]
	if r, _ := e.Result(); r != 4 {
		t.Errorf("tick 5: %v", r)
	}
	// Windowed max keeps the peak in view.
	qm, _ := Parse("max(w=3;A)@1")
	em := NewEval(qm)
	em.Observe("A", 9, 0)
	em.Observe("A", 1, 1)
	em.Observe("A", 2, 2)
	if r, _ := em.Result(); r != 9 {
		t.Errorf("windowed max = %v, want 9", r)
	}
	em.Observe("A", 3, 3) // the 9 fell out
	if r, _ := em.Result(); r != 3 {
		t.Errorf("windowed max after eviction = %v, want 3", r)
	}
}

// TestToleranceGuarantee is the allocation soundness check at the eval
// level: drive a truth eval and a view eval with the same tick stream,
// the view's inputs perturbed within the allocated tolerance, and demand
// the results stay within cQ. The node prop test replays the same
// invariant against delivered scenarios.
func TestToleranceGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []string{
		"sum(A,B,C)@0.6", "avg(A,B,C)@0.3", "min(A,B,C)@0.25",
		"max(A,B,C)@0.25", "diff(A,B)@0.4",
		"sum(w=4;A,B,C)@0.6", "avg(w=3;A,B,C)@0.3", "min(w=5;A,B,C)@0.25",
		"max(w=2;A,B,C)@0.25", "diff(w=3;A,B)@0.4",
	}
	for _, spec := range specs {
		q, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		alloc := float64(q.InputTolerance())
		truth, view := NewEval(q), NewEval(q)
		vals := make(map[string]float64)
		for _, x := range q.Items {
			vals[x] = 10 + rng.Float64()
		}
		for tick := int64(0); tick < 200; tick++ {
			for _, x := range q.Items {
				vals[x] += rng.NormFloat64() * 0.5
				truth.Observe(x, vals[x], tick)
				view.Observe(x, vals[x]+(2*rng.Float64()-1)*alloc, tick)
			}
			rt, okT := truth.Result()
			rv, okV := view.Result()
			if !okT || !okV {
				t.Fatalf("%s: undefined result at tick %d", spec, tick)
			}
			if d := math.Abs(rt - rv); d > q.Tolerance+1e-9 {
				t.Fatalf("%s: result drift %v exceeds cQ=%v at tick %d", spec, d, q.Tolerance, tick)
			}
		}
	}
}

func BenchmarkEvalObserve(b *testing.B) {
	q, _ := Parse("avg(w=8;A,B,C,D)@0.1")
	e := NewEval(q)
	items := q.Items
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Observe(items[i%len(items)], float64(i%97), int64(i/4))
	}
}
