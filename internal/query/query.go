// Package query adds continuous derived-data queries on top of the
// coherency machinery: a client no longer has to watch raw items and
// recombine them — it subscribes to a *derived* value (a portfolio
// average, a spread between two tickers, a windowed max over a sensor
// group) with a tolerance cQ on the result, and the system bounds the
// result's error the same way Eqs. 3 and 7 bound a raw copy's.
//
// The algebra is deliberately small: a windowed aggregate (sum, avg,
// min, max) over an item set, a join (difference or ratio) over an item
// pair, and an optional filter predicate gating the result. What makes
// it compose with the paper's machinery is **tolerance allocation**:
// each operator is Lipschitz in its inputs under the sup norm, so a
// result tolerance cQ translates into per-input tolerances that the
// existing DeriveNeeds/Eq. 3+7 pipeline can enforce — and a coherent
// set of inputs then provably implies a coherent result:
//
//	sum   error ≤ Σ|eᵢ|      → allocate cQ/n per input (n·cQ/n = cQ)
//	avg   error ≤ (1/n)Σ|eᵢ| → allocate cQ per input (n·(1/n)·cQ = cQ)
//	min   |min u − min v| ≤ maxᵢ|uᵢ−vᵢ| → allocate cQ (1-Lipschitz)
//	max   symmetric to min              → allocate cQ
//	diff  |（a−b)−(a'−b')| ≤ |eₐ|+|e_b| → allocate cQ/2 per side
//	ratio first-order: allocate cQ/2 per side (exact only when the
//	      denominator is bounded away from zero; see DESIGN.md)
//	filter: the identity on the value — tolerances pass through
//
// Windows follow the same discipline. The window combiner is the mean
// of the per-tick aggregates for sum/avg/diff/ratio and the min/max of
// them for min/max — every combiner is 1-Lipschitz in the sup norm over
// its slots, so per-tick aggregates within cQ keep the windowed result
// within cQ.
//
// Evaluation happens at the serving repository by default — the inputs
// already flow there, so only *result* changes travel the last hop to
// the client — or at the client (Placement PlaceClient), where every
// input delivery travels instead. The two placements produce the same
// result stream; they trade message cost, which the query-cost figure
// measures.
package query

import (
	"fmt"
	"sort"

	"d3t/internal/coherency"
)

// Kind is the query's combining operator.
type Kind int

const (
	// Sum, Avg, Min and Max aggregate over the whole item set.
	Sum Kind = iota
	Avg
	Min
	Max
	// Diff and Ratio join an item pair: Items[0]−Items[1] and
	// Items[0]/Items[1] respectively.
	Diff
	Ratio
)

// kindNames is the canonical spelling of each kind in the spec grammar.
var kindNames = map[Kind]string{
	Sum: "sum", Avg: "avg", Min: "min", Max: "max", Diff: "diff", Ratio: "ratio",
}

// String returns the kind's grammar spelling.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsJoin reports whether the kind pairs exactly two items.
func (k Kind) IsJoin() bool { return k == Diff || k == Ratio }

// Placement selects where the query plan is evaluated.
type Placement int

const (
	// PlaceRepo evaluates at the serving repository: the inputs already
	// flow there, and only result changes travel to the client.
	PlaceRepo Placement = iota
	// PlaceClient evaluates at the client: every input delivery travels,
	// the client recombines locally. Same result stream, different
	// message cost.
	PlaceClient
)

// Pred is the optional Filter(pred) stage: the result is published only
// while the predicate holds. The predicate is the identity on the value
// (|x − y| unchanged), so tolerance allocation passes through it.
type Pred struct {
	// Op is '>' or '<'.
	Op byte
	// X is the threshold the result is compared against.
	X float64
}

// Holds evaluates the predicate.
func (p *Pred) Holds(v float64) bool {
	if p.Op == '<' {
		return v < p.X
	}
	return v > p.X
}

// Query is one continuous derived-data query: the operator, its input
// items, the tick window, the client's tolerance on the result, and the
// optional filter and placement.
type Query struct {
	// Name identifies the query session (callers assign it; Parse leaves
	// it empty and ParseList fills q0, q1, ...).
	Name string
	// Kind is the combining operator.
	Kind Kind
	// Items are the input items, in spec order (order matters for joins:
	// Diff is Items[0]−Items[1]).
	Items []string
	// Window is the aggregation window in query ticks (>= 1; 1 means
	// the instantaneous aggregate).
	Window int
	// Tolerance is cQ: the client's coherency tolerance on the result.
	Tolerance float64
	// Pred, when set, gates result publication (Filter(pred)).
	Pred *Pred
	// Placement selects repository-side (default) or client-side
	// evaluation.
	Placement Placement
}

// Validate reports the first problem with the query.
func (q *Query) Validate() error {
	if _, ok := kindNames[q.Kind]; !ok {
		return fmt.Errorf("query: unknown kind %d", int(q.Kind))
	}
	if len(q.Items) == 0 {
		return fmt.Errorf("query: no input items")
	}
	if q.Kind.IsJoin() && len(q.Items) != 2 {
		return fmt.Errorf("query: %s joins exactly two items, got %d", q.Kind, len(q.Items))
	}
	seen := make(map[string]bool, len(q.Items))
	for _, x := range q.Items {
		if x == "" {
			return fmt.Errorf("query: empty item name")
		}
		if seen[x] {
			return fmt.Errorf("query: duplicate item %q", x)
		}
		seen[x] = true
	}
	if q.Window < 1 {
		return fmt.Errorf("query: window %d < 1", q.Window)
	}
	if !(q.Tolerance > 0) {
		return fmt.Errorf("query: tolerance %v must be positive", q.Tolerance)
	}
	if q.Pred != nil && q.Pred.Op != '>' && q.Pred.Op != '<' {
		return fmt.Errorf("query: unknown predicate op %q", string(q.Pred.Op))
	}
	return nil
}

// InputTolerance returns the per-input tolerance the allocation rules
// derive from cQ — the budget each input must be served within so the
// operator's Lipschitz bound keeps the result within cQ.
func (q *Query) InputTolerance() coherency.Requirement {
	switch q.Kind {
	case Sum:
		return coherency.Requirement(q.Tolerance / float64(len(q.Items)))
	case Avg:
		// Per-input sensitivity is 1/n, so each input may use the whole
		// budget: n · (1/n) · cQ = cQ.
		return coherency.Requirement(q.Tolerance)
	case Min, Max:
		// 1-Lipschitz in the sup norm: the budget passes through.
		return coherency.Requirement(q.Tolerance)
	case Diff, Ratio:
		return coherency.Requirement(q.Tolerance / 2)
	}
	return coherency.Requirement(q.Tolerance)
}

// Wants returns the query session's input subscription: every input item
// at the allocated tolerance, ready for node.NewSession / DeriveNeeds.
func (q *Query) Wants() map[string]coherency.Requirement {
	tol := q.InputTolerance()
	out := make(map[string]coherency.Requirement, len(q.Items))
	for _, x := range q.Items {
		out[x] = tol
	}
	return out
}

// SortedItems returns the input items in deterministic order.
func (q *Query) SortedItems() []string {
	items := append([]string(nil), q.Items...)
	sort.Strings(items)
	return items
}

// ResultItem is the pseudo-item name result pushes travel under on the
// client-facing transports (live channel updates, netio update frames).
// The "query:" prefix cannot collide with trace items, whose names never
// contain a colon.
func (q *Query) ResultItem() string { return "query:" + q.Name }

// String renders the canonical spec — Parse(q.String()) reproduces the
// query (modulo Name, which the grammar does not carry).
func (q *Query) String() string {
	s := q.Kind.String() + "("
	if q.Window > 1 {
		s += fmt.Sprintf("w=%d;", q.Window)
	}
	for i, x := range q.Items {
		if i > 0 {
			s += ","
		}
		s += x
	}
	s += ")"
	if q.Pred != nil {
		s += fmt.Sprintf("%c%g", q.Pred.Op, q.Pred.X)
	}
	s += fmt.Sprintf("@%g", q.Tolerance)
	if q.Placement == PlaceClient {
		s += "!client"
	}
	return s
}
