package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a query from its spec string. The grammar, by example:
//
//	avg(w=5;ITEM000,ITEM001,ITEM002)@0.05
//	diff(ITEM000,ITEM001)>0@0.1!client
//
// formally:
//
//	spec  := kind '(' [ 'w=' INT ';' ] item { ',' item } ')'
//	         [ pred ] '@' FLOAT [ '!client' ]
//	kind  := 'sum' | 'avg' | 'min' | 'max' | 'diff' | 'ratio'
//	pred  := ( '>' | '<' ) FLOAT
//
// The window defaults to 1 (the instantaneous aggregate); diff and ratio
// take exactly two items (Items[0]−Items[1], Items[0]/Items[1]). The
// float after '@' is cQ, the client's tolerance on the result. The
// returned query has no Name; callers assign one (ParseList uses q0,
// q1, ...).
func Parse(spec string) (Query, error) {
	var q Query
	q.Window = 1
	s := strings.TrimSpace(spec)

	open := strings.IndexByte(s, '(')
	if open < 0 {
		return q, fmt.Errorf("query: %q: missing '('", spec)
	}
	kind, ok := parseKind(s[:open])
	if !ok {
		return q, fmt.Errorf("query: %q: unknown kind %q", spec, s[:open])
	}
	q.Kind = kind
	s = s[open+1:]

	close := strings.IndexByte(s, ')')
	if close < 0 {
		return q, fmt.Errorf("query: %q: missing ')'", spec)
	}
	body, rest := s[:close], s[close+1:]

	if w, items, found := strings.Cut(body, ";"); found {
		n, ok := strings.CutPrefix(strings.TrimSpace(w), "w=")
		if !ok {
			return q, fmt.Errorf("query: %q: window clause %q (want w=<ticks>;...)", spec, w)
		}
		win, err := strconv.Atoi(n)
		if err != nil || win < 1 {
			return q, fmt.Errorf("query: %q: bad window %q", spec, n)
		}
		q.Window = win
		body = items
	}
	for _, item := range strings.Split(body, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return q, fmt.Errorf("query: %q: empty item name", spec)
		}
		q.Items = append(q.Items, item)
	}

	if place, ok := strings.CutSuffix(rest, "!client"); ok {
		q.Placement = PlaceClient
		rest = place
	}
	pred, tol, found := strings.Cut(rest, "@")
	if !found {
		return q, fmt.Errorf("query: %q: missing @tolerance", spec)
	}
	cq, err := strconv.ParseFloat(strings.TrimSpace(tol), 64)
	if err != nil || !(cq > 0) {
		return q, fmt.Errorf("query: %q: bad tolerance %q", spec, tol)
	}
	q.Tolerance = cq

	if pred = strings.TrimSpace(pred); pred != "" {
		op := pred[0]
		if op != '>' && op != '<' {
			return q, fmt.Errorf("query: %q: bad predicate %q (want >x or <x)", spec, pred)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(pred[1:]), 64)
		if err != nil {
			return q, fmt.Errorf("query: %q: bad predicate threshold %q", spec, pred[1:])
		}
		q.Pred = &Pred{Op: op, X: x}
	}

	if err := q.Validate(); err != nil {
		return q, fmt.Errorf("%w (in %q)", err, spec)
	}
	return q, nil
}

// ParseList parses a list of specs and names them q0, q1, ... in order.
func ParseList(specs []string) ([]Query, error) {
	out := make([]Query, 0, len(specs))
	for i, spec := range specs {
		q, err := Parse(spec)
		if err != nil {
			return nil, err
		}
		q.Name = fmt.Sprintf("q%d", i)
		out = append(out, q)
	}
	return out, nil
}

// parseKind resolves a kind's grammar spelling.
func parseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == strings.TrimSpace(s) {
			return k, true
		}
	}
	return 0, false
}
