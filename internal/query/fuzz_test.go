package query

import (
	"strings"
	"testing"
)

// FuzzParseQuery hammers the -query spec grammar: any input must either
// be rejected or yield a query that validates, allocates a positive
// per-input budget no larger than mandated by its operator's
// sensitivity, and survives a canonical-form round trip.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"avg(w=5;ITEM000,ITEM001,ITEM002)@0.05",
		"sum(A,B)@1",
		"min(w=2;A)@0.5",
		"max(A,B,C,D)@2",
		"diff(A,B)>0@0.1!client",
		"ratio(A,B)<1.5@0.2",
		"sum(w=100;A)@0.001",
		// Malformed shapes steer the fuzzer toward the edges.
		"", "avg", "avg()@0.1", "avg(A)@", "avg(A)@0", "avg(A)@-1",
		"mean(A)@0.1", "avg(w=0;A)@0.1", "avg(A,A)@0.1", "diff(A)@0.1",
		"diff(A,B,C)@0.1", "avg(A)>@0.1", "avg(A@0.1", "avg(A))@0.1",
		"avg(w=;A)@0.1", "sum(A)@1e309", "sum(A)@NaN", "avg(A)@0.1!client!client",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		q, err := Parse(spec)
		if err != nil {
			return
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid query: %v", spec, verr)
		}
		alloc := float64(q.InputTolerance())
		if !(alloc > 0) || alloc > q.Tolerance+1e-12 {
			t.Fatalf("Parse(%q): allocation %v outside (0, cQ=%v]", spec, alloc, q.Tolerance)
		}
		if q.Kind == Sum && alloc*float64(len(q.Items)) > q.Tolerance*(1+1e-12) {
			t.Fatalf("Parse(%q): sum allocation %v x %d inputs exceeds cQ=%v",
				spec, alloc, len(q.Items), q.Tolerance)
		}
		canon := q.String()
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if back.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, back.String())
		}
		if strings.Contains(canon, "\n") {
			t.Fatalf("canonical form %q contains a newline", canon)
		}
	})
}
