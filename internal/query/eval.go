package query

// Eval is one query's incremental evaluator: it holds the current copy
// of every input, the window ring of per-tick aggregates, and the
// eval/recompute counters the observability layer and the cross-backend
// parity test read. It is not safe for concurrent use; every transport
// drives it under the serving core's lock (sim fleet, live node mutex,
// netio handler goroutine).
//
// The query clock is whatever tick stream the caller supplies — the
// simulator uses trace time over the tick interval, the live runtimes
// use wall time over the same interval. Ticks only place aggregates into
// window slots; the eval/recompute counts depend solely on the delivery
// sequence, which is what makes them comparable across backends.
type Eval struct {
	q Query

	vals    map[string]float64
	missing int

	// win is the ring of per-tick aggregates; win[pos] is the current
	// tick's slot, updated in place as observations arrive. winSum keeps
	// the running slot sum incrementally for the mean-combined kinds;
	// min/max scan the ring (at most Window slots) per recompute.
	win    []float64
	pos    int
	fill   int
	tick   int64
	winSum float64

	instant float64 // the current tick's aggregate (win[pos])
	result  float64
	ok      bool

	evals      uint64
	recomputes uint64
}

// NewEval builds the evaluator for a validated query.
func NewEval(q Query) *Eval {
	e := &Eval{
		q:       q,
		vals:    make(map[string]float64, len(q.Items)),
		missing: len(q.Items),
		win:     make([]float64, q.Window),
	}
	return e
}

// Query returns the query the evaluator runs.
func (e *Eval) Query() Query { return e.q }

// Evals returns how many input deliveries the evaluator processed;
// Recomputes how many times the result was recomputed (one per delivery
// once every input has a value).
func (e *Eval) Evals() uint64      { return e.evals }
func (e *Eval) Recomputes() uint64 { return e.recomputes }

// Result returns the current windowed result, and false while any input
// is still unseeded.
func (e *Eval) Result() (float64, bool) { return e.result, e.ok }

// Seed installs an initial input value without counting an eval or a
// recompute — the "all repositories join synchronized" path of the
// simulator, which seeds copies outside the delivery stream.
func (e *Eval) Seed(item string, v float64, tick int64) {
	if !e.set(item, v) {
		return
	}
	if e.missing == 0 {
		e.recompute(tick)
	}
}

// Observe processes one delivered input value at the given query tick.
// It returns the windowed result, whether the result is defined (every
// input seen at least once — which also means a recompute happened), and
// whether the defined result changed from the previous defined one.
func (e *Eval) Observe(item string, v float64, tick int64) (res float64, ok, changed bool) {
	if !e.set(item, v) {
		return e.result, false, false
	}
	e.evals++
	if e.missing > 0 {
		return e.result, false, false
	}
	prev, had := e.result, e.ok
	e.recompute(tick)
	e.recomputes++
	return e.result, true, !had || e.result != prev
}

// set records the value, returning false for items outside the query.
func (e *Eval) set(item string, v float64) bool {
	if _, watched := e.vals[item]; !watched {
		member := false
		for _, x := range e.q.Items {
			if x == item {
				member = true
				break
			}
		}
		if !member {
			return false
		}
		e.missing--
	}
	e.vals[item] = v
	return true
}

// recompute advances the window to tick, refreshes the current slot with
// the instantaneous aggregate, and recombines the window.
func (e *Eval) recompute(tick int64) {
	inst := e.aggregate()
	e.advanceTo(tick)
	// Refresh the current slot in place.
	e.winSum += inst - e.win[e.pos]
	e.win[e.pos] = inst
	e.instant = inst
	e.result = e.combine()
	e.ok = true
}

// advanceTo moves the window forward to tick, carrying the last
// aggregate through empty ticks (both signals are piecewise constant).
// The first recompute pins the clock without rotating.
func (e *Eval) advanceTo(tick int64) {
	if e.fill == 0 {
		e.tick, e.fill = tick, 1
		return
	}
	if tick <= e.tick {
		return // same tick (or a late delivery): refresh the current slot
	}
	steps := tick - e.tick
	if steps > int64(len(e.win)) {
		steps = int64(len(e.win)) // a long gap fills the whole ring
	}
	for i := int64(0); i < steps; i++ {
		carry := e.win[e.pos]
		e.pos = (e.pos + 1) % len(e.win)
		e.winSum += carry - e.win[e.pos]
		e.win[e.pos] = carry
		if e.fill < len(e.win) {
			e.fill++
		}
	}
	e.tick = tick
}

// aggregate computes the instantaneous cross-item aggregate.
func (e *Eval) aggregate() float64 {
	switch e.q.Kind {
	case Sum, Avg:
		var s float64
		for _, x := range e.q.Items {
			s += e.vals[x]
		}
		if e.q.Kind == Avg {
			s /= float64(len(e.q.Items))
		}
		return s
	case Min, Max:
		out := e.vals[e.q.Items[0]]
		for _, x := range e.q.Items[1:] {
			v := e.vals[x]
			if (e.q.Kind == Min && v < out) || (e.q.Kind == Max && v > out) {
				out = v
			}
		}
		return out
	case Diff:
		return e.vals[e.q.Items[0]] - e.vals[e.q.Items[1]]
	case Ratio:
		b := e.vals[e.q.Items[1]]
		if b == 0 {
			// An undefined ratio holds the last aggregate rather than
			// poisoning the window with an infinity.
			return e.instant
		}
		return e.vals[e.q.Items[0]] / b
	}
	return 0
}

// combine folds the filled window slots into the windowed result: the
// mean for sum/avg/diff/ratio (error-averaging), min/max for min/max.
// Every combiner is 1-Lipschitz in the sup norm over its slots, which is
// what lets the per-tick coherency bound survive windowing.
func (e *Eval) combine() float64 {
	if e.fill <= 1 {
		return e.win[e.pos]
	}
	switch e.q.Kind {
	case Min, Max:
		// The filled slots are the pos-anchored last `fill` entries.
		out := e.win[e.pos]
		for i := 1; i < e.fill; i++ {
			v := e.win[(e.pos-i+len(e.win))%len(e.win)]
			if (e.q.Kind == Min && v < out) || (e.q.Kind == Max && v > out) {
				out = v
			}
		}
		return out
	default:
		return e.winSum / float64(e.fill)
	}
}
