package place

import (
	"sort"
	"testing"

	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// testNet builds a network whose endpoint-to-endpoint delays are given
// directly: delay[i][j] for endpoints 1..n (row/column 0 unused).
func testNet(delays [][]int64) *netsim.Network {
	n := len(delays) - 1
	net := &netsim.Network{Repositories: n}
	net.Delay = make([][]sim.Time, len(delays))
	for i := range delays {
		net.Delay[i] = make([]sim.Time, len(delays[i]))
		for j := range delays[i] {
			net.Delay[i][j] = sim.Time(delays[i][j])
		}
	}
	return net
}

// fakeState is a hand-driven placement state.
type fakeState struct {
	dead map[repository.ID]bool
	full map[repository.ID]bool
	load map[repository.ID]int
}

func (st *fakeState) Alive(id repository.ID) bool   { return !st.dead[id] }
func (st *fakeState) HasRoom(id repository.ID) bool { return !st.full[id] }
func (st *fakeState) Load(id repository.ID) int     { return st.load[id] }

func grid5() *netsim.Network {
	// 5 endpoints; from home 1 the (delay, id) order is 1,3,2,5,4 —
	// including an equal-delay tie between 2 and 5 broken by id.
	return testNet([][]int64{
		{0, 0, 0, 0, 0, 0},
		{0, 0, 7, 3, 9, 7},
		{0, 7, 0, 5, 2, 8},
		{0, 3, 5, 0, 6, 4},
		{0, 9, 2, 6, 0, 1},
		{0, 7, 8, 4, 1, 0},
	})
}

func TestOrderNearestFirst(t *testing.T) {
	net := grid5()
	ix := New(net, 5, Options{})
	got := ix.Order(1)
	want := []repository.ID{1, 3, 2, 5, 4}
	if len(got) != len(want) {
		t.Fatalf("order length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	// The order must equal the brute-force stable (delay, id) sort from
	// every home.
	for home := repository.ID(1); home <= 5; home++ {
		brute := make([]repository.ID, 5)
		for i := range brute {
			brute[i] = repository.ID(i + 1)
		}
		sort.SliceStable(brute, func(i, j int) bool {
			di, dj := net.Delay[home][brute[i]], net.Delay[home][brute[j]]
			if di != dj {
				return di < dj
			}
			return brute[i] < brute[j]
		})
		got := ix.Order(home)
		for i := range brute {
			if got[i] != brute[i] {
				t.Fatalf("home %d: order %v, want %v", home, got, brute)
			}
		}
	}
	// Bucket boundaries group equal delays: from home 1 delays are
	// 0,3,7,7,9 -> buckets end at 1,2,4,5.
	b := ix.Buckets(1)
	wantB := []int{1, 2, 4, 5}
	if len(b) != len(wantB) {
		t.Fatalf("buckets %v, want %v", b, wantB)
	}
	for i := range wantB {
		if b[i] != wantB[i] {
			t.Fatalf("buckets %v, want %v", b, wantB)
		}
	}
}

// TestPlaceEnumeratesNearestOnly is the O(k) contract: admitting many
// sessions from one home builds the candidate order exactly once, and
// each admission whose nearest repository has room enumerates exactly
// one candidate — not all of them.
func TestPlaceEnumeratesNearestOnly(t *testing.T) {
	ix := New(grid5(), 5, Options{})
	st := &fakeState{}
	const admissions = 1000
	for i := 0; i < admissions; i++ {
		id, pos := ix.Place(st, 1, repository.NoID, uint32(i), nil, true)
		if id != 1 || pos != 0 {
			t.Fatalf("admission %d placed on %d at pos %d, want repo 1 pos 0", i, id, pos)
		}
	}
	if ix.Builds() != 1 {
		t.Fatalf("built %d candidate orders for one home, want 1", ix.Builds())
	}
	if ix.Walked() != admissions {
		t.Fatalf("walked %d candidates over %d admissions, want one each", ix.Walked(), admissions)
	}
}

func TestPlaceSkipsFullAndDead(t *testing.T) {
	ix := New(grid5(), 5, Options{})
	st := &fakeState{
		dead: map[repository.ID]bool{1: true},
		full: map[repository.ID]bool{3: true},
	}
	// Order from home 1 is 1,3,2,5,4: 1 dead, 3 full -> 2.
	id, pos := ix.Place(st, 1, repository.NoID, 0, nil, true)
	if id != 2 || pos != 2 {
		t.Fatalf("placed on %d at pos %d, want repo 2 pos 2", id, pos)
	}
	// Excluding the current repository (migration) skips it too.
	id, _ = ix.Place(st, 1, 2, 0, nil, false)
	if id != 5 {
		t.Fatalf("migration placed on %d, want repo 5", id)
	}
}

func TestPlaceServingPreference(t *testing.T) {
	ix := New(grid5(), 5, Options{})
	st := &fakeState{}
	serves := func(id repository.ID) bool { return id == 5 }
	// Non-initial placement prefers a candidate already serving the
	// items even when nearer ones have room.
	id, pos := ix.Place(st, 1, repository.NoID, 0, serves, false)
	if id != 5 || pos != 3 {
		t.Fatalf("placed on %d at pos %d, want repo 5 pos 3", id, pos)
	}
	// When no candidate serves, the second pass takes the nearest with
	// room rather than stranding the session.
	none := func(repository.ID) bool { return false }
	id, pos = ix.Place(st, 1, repository.NoID, 0, none, false)
	if id != 1 || pos != 0 {
		t.Fatalf("placed on %d at pos %d, want repo 1 pos 0", id, pos)
	}
}

func TestPlaceLeastLoadedFallback(t *testing.T) {
	ix := New(grid5(), 5, Options{})
	st := &fakeState{
		full: map[repository.ID]bool{1: true, 2: true, 3: true, 4: true, 5: true},
		load: map[repository.ID]int{1: 9, 2: 4, 3: 7, 4: 6, 5: 4},
	}
	// Initial placement with every repository at cap overflows to the
	// least loaded; the tie between 2 and 5 resolves to the nearer (5
	// precedes 2 in home 1's order? no: order is 1,3,2,5,4, so 2 wins).
	id, pos := ix.Place(st, 1, repository.NoID, 0, nil, true)
	if id != 2 || pos != NoPos {
		t.Fatalf("fallback placed on %d at pos %d, want repo 2 (least loaded, nearest tie) NoPos", id, pos)
	}
	// Non-initial placement orphans instead.
	id, _ = ix.Place(st, 1, repository.NoID, 0, nil, false)
	if id != repository.NoID {
		t.Fatalf("non-initial fallback placed on %d, want NoID", id)
	}
}

func TestOverflowRing(t *testing.T) {
	ix := New(grid5(), 5, Options{RingSlots: 16, RingAfter: 2})
	// Nearest two candidates (1 and 3) are full: the walk abandons
	// locality after RingAfter tries and lands by hash on one of the
	// repositories with room.
	st := &fakeState{full: map[repository.ID]bool{1: true, 3: true}}
	counts := map[repository.ID]int{}
	for i := 0; i < 300; i++ {
		key := Key(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i)))
		id, pos := ix.Place(st, 1, repository.NoID, key, nil, true)
		if id == repository.NoID || st.full[id] {
			t.Fatalf("ring placed on %d (full or none)", id)
		}
		if pos != NoPos {
			t.Fatalf("ring placement reported walk pos %d, want NoPos", pos)
		}
		counts[id]++
	}
	// Hash-uniform overflow: every repository with room gets a share.
	for _, id := range []repository.ID{2, 4, 5} {
		if counts[id] == 0 {
			t.Fatalf("ring never placed on repo %d: %v", id, counts)
		}
	}
	// Determinism: the same key always lands on the same repository.
	a, _ := ix.Place(st, 1, repository.NoID, Key("session-x"), nil, true)
	b, _ := ix.Place(st, 1, repository.NoID, Key("session-x"), nil, true)
	if a != b {
		t.Fatalf("same key placed on %d then %d", a, b)
	}
}

func TestKeyIsFNV1a(t *testing.T) {
	if Key("") != 2166136261 {
		t.Fatalf("Key(\"\") = %d, want FNV-1a offset basis", Key(""))
	}
	if Key("a") != 0xe40c292c {
		t.Fatalf("Key(\"a\") = %#x, want 0xe40c292c", Key("a"))
	}
}
