// Package place is the shared session-placement index: given a client's
// home endpoint, which repository should serve it?
//
// Before this package existed every serving layer answered the question
// with its own linear machinery — the simulator fleet sorted the *entire*
// repository population by delay once per session (O(R log R) per
// admission) and walked the full order on every placement. That is fine
// for hundreds of sessions and fatal for a million. The index replaces it
// with three pieces:
//
//   - Delay-bucketed candidate lists per home endpoint. The nearest-first
//     (delay, id) order from one home is a property of the topology, not
//     of any session, so it is computed once per home — lazily, on the
//     first admission from that home — and shared by every session there.
//     Candidates at the same quantized delay form one bucket; the walk
//     touches buckets nearest-first and stops at the first fit, so the
//     common admission enumerates O(k) candidates instead of O(R).
//   - A consistent-hash overflow ring under the session cap (optional,
//     RingSlots > 0). When the nearest buckets are all full, walking the
//     remaining order degenerates to the old linear scan; the ring
//     instead spreads overflow sessions hash-uniformly across the repos
//     that still have room, in O(probe) time. The ring is a *policy*
//     change (overflow lands by hash, not by distance), so the concrete
//     fleet keeps it off to preserve its historical placements; the
//     virtual fleet turns it on at scale.
//   - The legacy fallbacks, stated once: initial placement falls back to
//     the least-loaded live repository when every repository is at cap
//     (the population always starts fully placed), and later placements
//     (migration, re-arrival) return NoID instead — the session is
//     orphaned until capacity returns.
//
// The index owns only topology-derived state. Liveness, load and serving
// stringency belong to the fleets; they are consulted through the State
// and serves callbacks so both the concrete and the virtual serving modes
// drive one implementation.
package place

import (
	"sort"

	"d3t/internal/netsim"
	"d3t/internal/repository"
)

// State answers the placement walk's per-repository questions: liveness,
// cap room, and current load. Implementations are the fleets' own
// bookkeeping; calls must be cheap (the walk makes O(k) of them).
type State interface {
	// Alive reports whether the repository is up.
	Alive(id repository.ID) bool
	// HasRoom reports whether the repository's session cap leaves room
	// for one more session.
	HasRoom(id repository.ID) bool
	// Load returns the repository's current session count (the
	// least-loaded overflow fallback compares it).
	Load(id repository.ID) int
}

// Options parameterizes an Index.
type Options struct {
	// RingSlots enables the consistent-hash overflow ring with this many
	// virtual nodes per repository (0 disables the ring and preserves the
	// legacy nearest-first overflow order exactly). 16 is a reasonable
	// value: the standard deviation of the per-repo overflow share decays
	// with 1/sqrt(slots).
	RingSlots int
	// RingAfter caps how many nearest candidates the walk tries before
	// giving up on locality and probing the ring (default 16; only
	// meaningful with RingSlots > 0).
	RingAfter int
}

// Index is the sharded placement index over one physical topology. The
// per-home candidate orders are built lazily and cached; the ring is
// built eagerly (it is O(repos * slots)). An Index is not safe for
// concurrent mutation; fleets serialize placement exactly as they
// serialize admission.
type Index struct {
	net  *netsim.Network
	n    int // repositories, ids 1..n
	opts Options

	// orders[home-1] is the cached nearest-first (delay, id) candidate
	// order from that home endpoint; nil until first use. buckets[home-1]
	// holds the end offset of each equal-delay bucket (diagnostics and
	// tests; the walk itself only needs the flat order).
	orders  [][]repository.ID
	buckets [][]int

	// ring is the consistent-hash overflow ring, sorted by point. Empty
	// when RingSlots == 0.
	ring []ringEntry

	// builds and walked count order constructions and candidates
	// enumerated — the O(k) contract's instrumentation (see
	// TestPlaceEnumeratesNearestOnly).
	builds int
	walked int
}

type ringEntry struct {
	point uint32
	id    repository.ID
}

// NoPos marks a placement that was not reached by walking the nearest-
// first order (ring overflow or least-loaded fallback): there is no
// meaningful candidate-walk prefix to charge a redirect to.
const NoPos = -1

// New builds an index over endpoints 1..repos of the network.
func New(net *netsim.Network, repos int, opts Options) *Index {
	if opts.RingAfter <= 0 {
		opts.RingAfter = 16
	}
	ix := &Index{
		net:     net,
		n:       repos,
		opts:    opts,
		orders:  make([][]repository.ID, repos),
		buckets: make([][]int, repos),
	}
	if opts.RingSlots > 0 {
		ix.ring = make([]ringEntry, 0, repos*opts.RingSlots)
		for id := 1; id <= repos; id++ {
			for s := 0; s < opts.RingSlots; s++ {
				ix.ring = append(ix.ring, ringEntry{
					point: ringPoint(uint32(id), uint32(s)),
					id:    repository.ID(id),
				})
			}
		}
		sort.Slice(ix.ring, func(i, j int) bool {
			if ix.ring[i].point != ix.ring[j].point {
				return ix.ring[i].point < ix.ring[j].point
			}
			return ix.ring[i].id < ix.ring[j].id
		})
	}
	return ix
}

// Order returns the nearest-first (delay, id) candidate order from the
// home endpoint, building and caching it on first use. The slice is
// shared: callers must not mutate it.
func (ix *Index) Order(home repository.ID) []repository.ID {
	o := ix.orders[home-1]
	if o != nil {
		return o
	}
	ix.builds++
	o = make([]repository.ID, ix.n)
	for i := range o {
		o[i] = repository.ID(i + 1)
	}
	delay := ix.net.Delay[home]
	sort.SliceStable(o, func(i, j int) bool {
		di, dj := delay[o[i]], delay[o[j]]
		if di != dj {
			return di < dj
		}
		return o[i] < o[j]
	})
	// Record the equal-delay bucket boundaries (end offsets).
	var ends []int
	for i := 1; i <= len(o); i++ {
		if i == len(o) || delay[o[i]] != delay[o[i-1]] {
			ends = append(ends, i)
		}
	}
	ix.orders[home-1] = o
	ix.buckets[home-1] = ends
	return o
}

// Buckets returns the cached equal-delay bucket end offsets for home
// (building the order if needed) — diagnostics for tests and docs.
func (ix *Index) Buckets(home repository.ID) []int {
	ix.Order(home)
	return ix.buckets[home-1]
}

// Place runs the full placement walk for a session homed at home:
//
//  1. With serves != nil (migration and re-arrival), the first pass
//     requires the candidate to serve every watched item at the client's
//     stringency; it walks nearest-first over live candidates with room.
//  2. The second pass drops the serving requirement rather than strand
//     the session.
//  3. With the ring enabled, a pass that has tried RingAfter nearest
//     candidates without a fit jumps to the consistent-hash ring at
//     key's point and probes for any live candidate with room.
//  4. If nothing has room: initial placement falls back to the least
//     loaded live repository (nearest-first tie-break) so the population
//     always starts fully placed; later placements return NoID.
//
// exclude names the repository the session is leaving (NoID when none).
// The returned pos is the target's position in Order(home) when it was
// found by the nearest-first walk — the admission latency walk's length —
// or NoPos for ring/fallback placements.
func (ix *Index) Place(st State, home, exclude repository.ID, key uint32, serves func(repository.ID) bool, initial bool) (target repository.ID, pos int) {
	if !initial && serves != nil {
		if id, p := ix.walk(st, home, exclude, key, serves); id != repository.NoID {
			return id, p
		}
	}
	if id, p := ix.walk(st, home, exclude, key, nil); id != repository.NoID {
		return id, p
	}
	if initial {
		return ix.leastLoaded(st, home), NoPos
	}
	return repository.NoID, NoPos
}

// walk is one nearest-first pass: the first live, non-excluded candidate
// with room (and passing serves, when given) wins. With the ring enabled
// the pass abandons locality after RingAfter tries and probes the ring.
func (ix *Index) walk(st State, home, exclude repository.ID, key uint32, serves func(repository.ID) bool) (repository.ID, int) {
	order := ix.Order(home)
	limit := len(order)
	ringed := len(ix.ring) > 0
	if ringed && ix.opts.RingAfter < limit {
		limit = ix.opts.RingAfter
	}
	for i := 0; i < limit; i++ {
		cand := order[i]
		ix.walked++
		if cand == exclude || !st.Alive(cand) || !st.HasRoom(cand) {
			continue
		}
		if serves != nil && !serves(cand) {
			continue
		}
		return cand, i
	}
	if ringed {
		if id := ix.probeRing(st, exclude, key, serves); id != repository.NoID {
			return id, NoPos
		}
	}
	return repository.NoID, NoPos
}

// probeRing walks the consistent-hash ring clockwise from key's point and
// returns the first live repository with room (passing serves, when
// given). Virtual nodes of the same repository are skipped after the
// first rejection via a small probe budget: the ring has RingSlots
// entries per repo, so a full revolution visits every repo.
func (ix *Index) probeRing(st State, exclude repository.ID, key uint32, serves func(repository.ID) bool) repository.ID {
	n := len(ix.ring)
	start := sort.Search(n, func(i int) bool { return ix.ring[i].point >= key })
	for i := 0; i < n; i++ {
		e := ix.ring[(start+i)%n]
		if e.id == exclude || !st.Alive(e.id) || !st.HasRoom(e.id) {
			continue
		}
		if serves != nil && !serves(e.id) {
			continue
		}
		return e.id
	}
	return repository.NoID
}

// leastLoaded returns the least-loaded live repository, ties resolved by
// the nearest-first order — the initial-placement overflow fallback.
func (ix *Index) leastLoaded(st State, home repository.ID) repository.ID {
	best := repository.NoID
	bestLoad := 0
	for _, cand := range ix.Order(home) {
		if !st.Alive(cand) {
			continue
		}
		if best == repository.NoID || st.Load(cand) < bestLoad {
			best, bestLoad = cand, st.Load(cand)
		}
	}
	return best
}

// Builds returns how many per-home candidate orders have been
// constructed; Walked returns how many candidates every placement walk
// together has enumerated. Both are the O(k) contract's test hooks.
func (ix *Index) Builds() int { return ix.builds }
func (ix *Index) Walked() int { return ix.walked }

// Key hashes a session name onto the overflow ring (FNV-1a) — the same
// hash family the ingest layer shards items with.
func Key(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h
}

// ringPoint spreads a repository's virtual nodes over the ring: FNV-1a
// over the (id, slot) pair's bytes.
func ringPoint(id, slot uint32) uint32 {
	h := uint32(2166136261)
	for _, b := range [8]byte{
		byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24),
		byte(slot), byte(slot >> 8), byte(slot >> 16), byte(slot >> 24),
	} {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}
