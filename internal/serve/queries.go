package serve

import (
	"fmt"

	"d3t/internal/coherency"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// QuerySession is one continuous derived-data query served by the fleet:
// an ordinary input session (the query's items at the allocated per-input
// tolerance, placed/filtered/migrated exactly like a client) plus two
// incremental evaluators and a result fidelity meter.
//
// The *view* evaluator is fed by the deliveries the serving repository's
// per-client filter lets through — it is the result the client actually
// sees, and its eval/recompute counts are the numbers the cross-backend
// parity test compares. The *truth* evaluator is fed by the source signal
// directly; the result meter integrates |truth − published view| ≤ cQ
// over the session's attached lifetime, which is the end-to-end guarantee
// the tolerance allocation is supposed to buy.
type QuerySession struct {
	// Query is the query being served.
	Query query.Query

	s     *Session
	truth *query.Eval
	view  *query.Eval
	rm    meter // result meter, c = cQ

	// attached mirrors the input session; predOpen tracks the filter
	// predicate against the truth result. The result meter observes only
	// while both hold — a departed client (or one whose predicate gates
	// the result off) is not owed the result.
	attached bool
	predOpen bool

	// have is the client's copy of the result: the last *published* view
	// result (publication is gated by the predicate on the view result).
	have   float64
	hasPub bool

	inputPushes  uint64 // input deliveries (client-side placement cost)
	resyncPushes uint64 // catch-up input deliveries
	resultPushes uint64 // published result changes (repo-side placement cost)
}

// Session returns the query's underlying input session.
func (qs *QuerySession) Session() *Session { return qs.s }

// Evals and Recomputes report the view evaluator's counters: input
// deliveries evaluated, and result recomputations (one per delivery once
// every input has a value). They depend only on the delivery sequence,
// so every backend serving the same update stream reports the same
// counts.
func (qs *QuerySession) Evals() uint64      { return qs.view.Evals() }
func (qs *QuerySession) Recomputes() uint64 { return qs.view.Recomputes() }

// Result returns the client's current copy of the result (the last
// published view result).
func (qs *QuerySession) Result() (float64, bool) { return qs.have, qs.hasPub }

// Fidelity returns the result-level fidelity up to now: the fraction of
// observed time the published result was within cQ of the truth result.
func (qs *QuerySession) Fidelity(now sim.Time) float64 {
	f, _ := qs.rm.fidelity(now)
	return f
}

// InputFloor returns the union-bound fidelity floor the inputs imply:
// the result can only be out of tolerance while some input is out of
// its allocated tolerance, so result fidelity ≥ 1 − Σᵢ(1 − fᵢ)
// (clamped at 0). This is the provable side of the allocation argument,
// measured: the query-fidelity figure checks the result stays above it.
func (qs *QuerySession) InputFloor(now sim.Time) float64 {
	floor := 1.0
	for i := range qs.s.meters {
		f, ok := qs.s.meters[i].fidelity(now)
		if !ok {
			continue
		}
		floor -= 1 - f
	}
	if floor < 0 {
		return 0
	}
	return floor
}

// gate reconciles the result meter with the session/predicate state.
func (qs *QuerySession) gate(now sim.Time) {
	want := qs.attached && qs.predOpen
	if want && !qs.rm.attached {
		qs.rm.attach(now)
	} else if !want && qs.rm.attached {
		qs.rm.detach(now)
	}
}

// QueryOutcome is one query's end-of-run summary.
type QueryOutcome struct {
	Name string
	Spec string
	// Repo is the repository serving the query at the horizon (NoID if
	// detached).
	Repo repository.ID
	// Fidelity is the result-level fidelity; InputFloor the union-bound
	// floor the input fidelities imply (see QuerySession.InputFloor).
	Fidelity   float64
	InputFloor float64
	// Evals and Recomputes are the view evaluator's counters.
	Evals, Recomputes uint64
	// InputPushes and ResultPushes are the per-placement last-hop message
	// costs: client-side evaluation ships every input delivery,
	// repository-side evaluation ships only published result changes.
	// Resyncs counts catch-up input deliveries (admission, migration).
	InputPushes, ResultPushes, Resyncs uint64
}

// QueryStats aggregates the query layer's end-of-run outcomes.
type QueryStats struct {
	// Queries is the catalogue size.
	Queries int
	// Evals and Recomputes sum the view evaluators' counters.
	Evals, Recomputes uint64
	// InputPushes, ResultPushes and Resyncs sum the per-query message
	// tallies; Messages is the realized last-hop cost, charging each
	// query by its declared placement (repo: result pushes; client: input
	// pushes + resyncs).
	InputPushes, ResultPushes, Resyncs uint64
	Messages                           uint64
	// MeanFidelity and WorstFidelity aggregate result-level fidelity;
	// LossPercent is 100*(1-MeanFidelity). MeanInputFloor is the mean
	// union-bound floor — the provable guarantee the allocation bought.
	MeanFidelity   float64
	WorstFidelity  float64
	LossPercent    float64
	MeanInputFloor float64
	// PerQuery is the per-query detail, in catalogue order.
	PerQuery []QueryOutcome
}

// String renders the stats as a one-line summary.
func (s QueryStats) String() string {
	return fmt.Sprintf("queries=%d queryLoss=%.2f%% floor=%.4f evals=%d recomputes=%d msgs=%d",
		s.Queries, s.LossPercent, s.MeanInputFloor, s.Evals, s.Recomputes, s.Messages)
}

// qTick maps simulation time onto the query clock.
func (f *Fleet) qTick(now sim.Time) int64 { return int64(now / f.qInterval) }

// AttachQueries admits the fleet's query catalogue (Options.Queries):
// each query becomes an input session subscribed to its items at the
// allocated per-input tolerance, placed like a client homed at a
// repository chosen round-robin. It returns one synthetic client per
// query — already homed at its placement — for the caller to fold into
// DeriveNeeds, so the overlay provably serves every input at least as
// stringently as the allocation demands.
func (f *Fleet) AttachQueries() ([]*repository.Client, error) {
	out := make([]*repository.Client, 0, len(f.opts.Queries))
	for i, q := range f.opts.Queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if q.Name == "" {
			return nil, fmt.Errorf("serve: query %d has no name", i)
		}
		if f.byName[q.Name] != nil {
			return nil, fmt.Errorf("serve: duplicate session %q", q.Name)
		}
		home := repository.ID(1 + i%len(f.repos))
		wants := q.Wants()
		s := newSession(q.Name, home, wants)
		qs := &QuerySession{
			Query:    q,
			s:        s,
			truth:    query.NewEval(q),
			view:     query.NewEval(q),
			rm:       meter{c: coherency.Requirement(q.Tolerance)},
			predOpen: q.Pred == nil,
		}
		s.ns.SetTag(qs)
		f.byName[q.Name] = s
		f.qByName[q.Name] = qs
		f.qOf[s] = qs
		target := f.place(s, true)
		if target == repository.NoID {
			delete(f.byName, q.Name)
			delete(f.qByName, q.Name)
			delete(f.qOf, s)
			return nil, fmt.Errorf("serve: no repository to place query %q on", q.Name)
		}
		f.attach(s, target, 0)
		for _, x := range s.items {
			f.byItem[x] = append(f.byItem[x], s)
			f.qByItem[x] = append(f.qByItem[x], qs)
		}
		f.queries = append(f.queries, qs)
		out = append(out, &repository.Client{Name: q.Name, Repo: target, Wants: wants})
	}
	return out, nil
}

// QuerySession returns a query session by query name.
func (f *Fleet) QuerySession(name string) *QuerySession { return f.qByName[name] }

// QuerySessions returns the query catalogue in attachment order.
func (f *Fleet) QuerySessions() []*QuerySession { return f.queries }

// seedQueries installs the initial values into both evaluators and
// primes the result meter — the synchronized-join path, outside the
// delivery stream (no eval/recompute counted).
func (f *Fleet) seedQueries(initial map[string]float64) {
	for _, qs := range f.queries {
		for _, x := range qs.Query.Items {
			if v, ok := initial[x]; ok {
				qs.truth.Seed(x, v, 0)
				qs.view.Seed(x, v, 0)
			}
		}
		if rt, ok := qs.truth.Result(); ok {
			qs.rm.src = rt
			if qs.Query.Pred != nil {
				qs.predOpen = qs.Query.Pred.Holds(rt)
				qs.gate(0)
			}
		}
		if rv, ok := qs.view.Result(); ok {
			if qs.Query.Pred == nil || qs.Query.Pred.Holds(rv) {
				qs.have, qs.hasPub = rv, true
				qs.rm.have = rv
			}
		}
		qs.rm.refresh()
	}
}

// observeQuerySource feeds one source-signal change into every query
// watching the item: the truth evaluator recomputes, the result meter's
// reference moves, and the predicate gate follows the truth result.
func (f *Fleet) observeQuerySource(now sim.Time, item string, v float64) {
	for _, qs := range f.qByItem[item] {
		rt, ok, _ := qs.truth.Observe(item, v, f.qTick(now))
		if !ok {
			continue
		}
		qs.rm.srcUpdate(now, rt)
		if qs.Query.Pred != nil {
			qs.predOpen = qs.Query.Pred.Holds(rt)
			qs.gate(now)
		}
	}
}

// queryDeliver runs one filtered input delivery through a query session:
// the input meter and push tallies move, the view evaluator recomputes,
// and a changed result that passes the predicate is published to the
// client's copy.
func (f *Fleet) queryDeliver(qs *QuerySession, now sim.Time, item string, v float64, resync bool) {
	qs.s.meterFor(item).deliver(now, v)
	if resync {
		qs.resyncPushes++
	} else {
		qs.inputPushes++
	}
	res, ok, changed := qs.view.Observe(item, v, f.qTick(now))
	recomputed := 0
	if ok {
		recomputed = 1
	}
	f.opts.Obs.Node(qs.s.Repo).QueryPass(1, recomputed)
	if !ok || !changed {
		return
	}
	if qs.Query.Pred != nil && !qs.Query.Pred.Holds(res) {
		return
	}
	qs.resultPushes++
	qs.have, qs.hasPub = res, true
	qs.rm.deliver(now, res)
}

// FinalizeQueries flushes churn through the horizon and returns the
// query layer's end-of-run statistics. Call it alongside Finalize.
func (f *Fleet) FinalizeQueries(horizon sim.Time) QueryStats {
	f.catchUp(horizon)
	st := QueryStats{Queries: len(f.queries), MeanFidelity: 1, WorstFidelity: 1, MeanInputFloor: 1}
	if len(f.queries) == 0 {
		return st
	}
	var fidSum, floorSum float64
	worst := 1.0
	for _, qs := range f.queries {
		fid := qs.Fidelity(horizon)
		floor := qs.InputFloor(horizon)
		fidSum += fid
		floorSum += floor
		if fid < worst {
			worst = fid
		}
		st.Evals += qs.view.Evals()
		st.Recomputes += qs.view.Recomputes()
		st.InputPushes += qs.inputPushes
		st.ResultPushes += qs.resultPushes
		st.Resyncs += qs.resyncPushes
		if qs.Query.Placement == query.PlaceClient {
			st.Messages += qs.inputPushes + qs.resyncPushes
		} else {
			st.Messages += qs.resultPushes
		}
		st.PerQuery = append(st.PerQuery, QueryOutcome{
			Name:         qs.Query.Name,
			Spec:         qs.Query.String(),
			Repo:         qs.s.Repo,
			Fidelity:     fid,
			InputFloor:   floor,
			Evals:        qs.view.Evals(),
			Recomputes:   qs.view.Recomputes(),
			InputPushes:  qs.inputPushes,
			ResultPushes: qs.resultPushes,
			Resyncs:      qs.resyncPushes,
		})
	}
	st.MeanFidelity = fidSum / float64(len(f.queries))
	st.WorstFidelity = worst
	st.LossPercent = 100 * (1 - st.MeanFidelity)
	st.MeanInputFloor = floorSum / float64(len(f.queries))
	return st
}
