package serve

import (
	"testing"

	"d3t/internal/sim"
)

// FuzzParseSessionPlan fuzzes the session-churn grammar — the resilience
// fault grammar applied to the session population. Beyond not panicking
// or hanging, an accepted plan must schedule departures in time order
// against valid 1-based session indexes, because Fleet.catchUp indexes
// the session slice with Fault.Node - 1 unchecked for order.
func FuzzParseSessionPlan(f *testing.F) {
	for _, spec := range []string{
		"", "none",
		"crash:1@10", "crash:5@10+20", "churn:5", "churn:5:40", "churn:0.1:0.1",
		"crash:max@10", "churn:Inf", "churn:NaN:1", "churn:1e308", "leave:1@2",
		"crash:1@", "crash:@1", "churn::", "churn:5:",
	} {
		f.Add(spec, 50, 200)
	}
	f.Fuzz(func(t *testing.T, spec string, sessions, ticks int) {
		sessions = 1 + absInt(sessions)%5000
		ticks = 2 + absInt(ticks)%10000
		plan, err := ParseSessionPlan(spec, sessions, ticks, sim.Second, 7)
		if err != nil || plan == nil {
			return
		}
		for i, ft := range plan.Faults {
			if i > 0 && ft.At < plan.Faults[i-1].At {
				t.Fatalf("spec %q: departure %d at %v before %d at %v", spec, i, ft.At, i-1, plan.Faults[i-1].At)
			}
			if ft.Node >= 1 && int(ft.Node) > sessions {
				t.Fatalf("spec %q: departure %d names session %v of %d", spec, i, ft.Node, sessions)
			}
			if ft.RejoinAt != 0 && ft.RejoinAt <= ft.At {
				t.Fatalf("spec %q: re-arrival %v not after departure %v", spec, ft.RejoinAt, ft.At)
			}
		}
	})
}

func absInt(v int) int {
	if v < 0 {
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}
