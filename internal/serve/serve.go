// Package serve closes the loop from dissemination tree to end users: it
// makes every client of Section 1.2 a first-class *session* that
// subscribes to items with its own coherency tolerance, and fans updates
// out from repositories to sessions through per-client coherency filters
// — the same Eqs. 3 and 7 test the tree applies between repositories,
// applied once more at the leaves, where fan-out cost concentrates.
// (Eq. 3 alone would reintroduce the Section 5 missed-update problem at
// the client: its copy could silently drift by its own tolerance plus
// the repository's.)
//
// The package supplies four pieces, wired through every layer:
//
//   - Sessions: per-client state (watch list, last-delivered values,
//     fidelity meters that integrate |source − client copy| ≤ c over the
//     session's attached lifetime) plus delivery/filter counters.
//   - Load-aware placement: each client attaches to the nearest
//     repository (by physical-network delay from its home point) that is
//     under the configurable session cap; overflow redirects to the next
//     candidate, and redirects are counted as a first-class outcome.
//   - Churn and migration: sessions arrive and depart under a seeded
//     plan (the resilience package's fault-plan machinery, reused with
//     sessions as the population), and migrate — with a resync to the
//     new repository's current copy — when their repository crashes.
//   - Client-observed fidelity: the paper's metric, measured at the true
//     consumer rather than the repository, reported per client and as a
//     population mean.
//
// The simulation entry point is Fleet, which implements the run
// observers of the dissemination and resilience runners; the live and
// netio runtimes serve sessions over channels and TCP respectively with
// the same admission/filter/migration policy.
package serve

import (
	"fmt"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/obs"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/resilience"
	"d3t/internal/sim"
)

// Options parameterizes a client fleet.
type Options struct {
	// Cap is the per-repository session cap (0 = unlimited). A client
	// whose nearest repository is full redirects to the next candidate.
	Cap int
	// Plan schedules session churn: a fault plan over the *session*
	// population (Fault.Node is a 1-based session index) where At is the
	// session's departure and RejoinAt its re-arrival. Nil means every
	// session stays for the whole run. See ParseSessionPlan.
	Plan *resilience.Plan

	// Obs, when set, collects the serving layer's per-repository
	// counters (admits, redirects, migrations, resyncs, per-session
	// deliver/filter decisions) and the redirect-latency histogram.
	// Observation is passive.
	Obs *obs.Tree

	// Queries is the continuous derived-data query catalogue; each entry
	// becomes a query session attached by AttachQueries (see queries.go).
	// Interval is the query clock's tick length in sim time (the trace
	// tick interval; defaults to 1 when unset), which places windowed
	// aggregates into their window slots.
	Queries  []query.Query
	Interval sim.Time
}

// Stats counts the serving layer's work and outcomes during one run.
type Stats struct {
	// Sessions is the session population size.
	Sessions int
	// Redirects counts admissions that landed on other than the nearest
	// repository because of the session cap.
	Redirects int
	// Migrations counts sessions moved to another repository after their
	// repository crashed; Resyncs counts the catch-up values pushed to
	// migrated or re-arriving sessions.
	Migrations int
	Resyncs    int
	// Orphaned counts sessions that found no live repository with
	// capacity at migration time (they retry when a repository rejoins).
	Orphaned int
	// Departures and Arrivals count executed session-churn events.
	Departures, Arrivals int
	// Delivered and Filtered count per-session update decisions: an
	// update a session's repository received is delivered when it exceeds
	// the client's own tolerance and filtered otherwise.
	Delivered, Filtered uint64
	// MeanFidelity is the mean client-observed fidelity over sessions;
	// LossPercent is 100*(1-MeanFidelity), matching the paper's y-axis.
	// WorstFidelity is the worst single session's fidelity.
	MeanFidelity  float64
	LossPercent   float64
	WorstFidelity float64
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("sessions=%d clientLoss=%.2f%% redirects=%d migrations=%d delivered=%d filtered=%d",
		s.Sessions, s.LossPercent, s.Redirects, s.Migrations, s.Delivered, s.Filtered)
}

// ParseSessionPlan builds a session churn plan from a spec string, sized
// to a population of `sessions` clients over `ticks` trace ticks. It
// reuses the resilience fault-plan grammar with sessions standing in for
// repositories:
//
//	"" | "none"                no churn
//	crash:<i>@<tick>[+<down>]  session i departs at the tick (and
//	                           re-arrives <down> ticks later)
//	churn:<rate>[:<meandown>]  seeded Poisson churn: <rate> expected
//	                           departures per 100 ticks across the
//	                           population, each away for an exponential
//	                           time with mean <meandown> ticks
//
// The same spec, sizes and seed always yield the same plan.
func ParseSessionPlan(spec string, sessions, ticks int, interval sim.Time, seed int64) (*resilience.Plan, error) {
	return resilience.ParsePlan(spec, sessions, ticks, interval, seed)
}

// Candidates ranks every repository by physical-network delay from the
// given home endpoint (nearest first, ties by id) — the order placement
// walks for admission and migration. Home is itself an endpoint id; a
// client is modeled as co-located with its home repository.
func Candidates(net *netsim.Network, home repository.ID, repos int) []repository.ID {
	out := make([]repository.ID, repos)
	for i := range out {
		out[i] = repository.ID(i + 1)
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := net.Delay[home][out[i]], net.Delay[home][out[j]]
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

// sortedItems returns the watch list's items in deterministic order.
func sortedItems(wants map[string]coherency.Requirement) []string {
	items := make([]string, 0, len(wants))
	for x := range wants {
		items = append(items, x)
	}
	sort.Strings(items)
	return items
}
