package serve

import (
	"fmt"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// BenchmarkFanOut measures the per-delivery cost of the leaf filter as
// the session count on one repository grows — the hot path of a
// serving-layer deployment, where one upstream delivery fans out to
// every session the repository carries.
func BenchmarkFanOut(b *testing.B) {
	for _, sessions := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			net := netsim.Uniform(1, sim.Millisecond)
			repo := repository.New(1, 4)
			repo.Needs["X"], repo.Serving["X"] = 0.01, 0.01
			f, err := NewFleet(net, []*repository.Repository{repo}, Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < sessions; i++ {
				// Alternate loose and tight tolerances so the bench
				// exercises both filter outcomes.
				tol := coherency.Requirement(0.5)
				if i%2 == 0 {
					tol = 5
				}
				c := &repository.Client{
					Name: fmt.Sprintf("c%05d", i), Repo: 1,
					Wants: map[string]coherency.Requirement{"X": tol},
				}
				if _, err := f.Attach(c); err != nil {
					b.Fatal(err)
				}
			}
			f.Seed(map[string]float64{"X": 100})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := 100 + float64(i%3)
				now := sim.Time(i+1) * sim.Millisecond
				f.ObserveSource(now, "X", v)
				f.ObserveDeliver(now, 1, "X", v)
			}
			st := f.Finalize(sim.Time(b.N+1) * sim.Millisecond)
			b.ReportMetric(float64(st.Delivered+st.Filtered)/float64(b.N), "decisions/op")
		})
	}
}
