package serve

import (
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/obs"
	"d3t/internal/sim"
)

// TestFleetObs checks the serving-layer feed into the observability
// tree: admits and resyncs through the core, cap-overflow redirects with
// a latency sample charged to the repository that turned the client
// away, and migrations charged to the repository that took the session
// in.
func TestFleetObs(t *testing.T) {
	net := netsim.Uniform(3, sim.Millisecond)
	repos := population(3, 0.5)
	tree := obs.NewTree()
	f, err := NewFleet(net, repos, Options{Cap: 1, Obs: tree})
	if err != nil {
		t.Fatal(err)
	}
	wants := func() map[string]coherency.Requirement {
		return map[string]coherency.Requirement{"X": 0.5}
	}
	if _, err := f.Attach(client("a", 1, wants())); err != nil {
		t.Fatal(err)
	}
	b, err := f.Attach(client("b", 1, wants()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Repo != 2 || !b.Redirected() {
		t.Fatalf("overflow client placed at %d (redirected=%v), want redirect to 2", b.Repo, b.Redirected())
	}
	f.Seed(map[string]float64{"X": 10})

	n1 := tree.Node(1).Snapshot(0)
	if n1.Counters.Redirects != 1 || n1.Redirect.Count != 1 {
		t.Errorf("repo1 redirect counters: %+v hist %+v, want 1 each", n1.Counters, n1.Redirect)
	}
	// The admission walk paid a round trip to full repo 1 (self-delay 0)
	// plus one to repo 2 (1ms each way): 2ms.
	if n1.Redirect.P50Ms < 1 {
		t.Errorf("redirect latency p50 %vms, want >= the round trip to the next candidate", n1.Redirect.P50Ms)
	}

	// Crash repo 2: its session migrates to repo 3 (repo 1 is at cap),
	// charging a migration there and resyncing the session's copy.
	f.ObserveSource(sim.Second, "X", 20)
	f.ObserveDeliver(sim.Second, 2, "X", 20)
	f.ObserveCrash(2*sim.Second, 2)
	if b.Repo != 3 {
		t.Fatalf("session migrated to %d, want 3", b.Repo)
	}
	n3 := tree.Node(3).Snapshot(0)
	if n3.Counters.Migrations != 1 {
		t.Errorf("repo3 migrations = %d, want 1", n3.Counters.Migrations)
	}
	var admits, resyncs uint64
	for _, r := range repos {
		snap := tree.Node(r.ID).Snapshot(0)
		admits += snap.Counters.Admits
		resyncs += snap.Counters.Resyncs
	}
	if admits != 3 { // a, b, and b's migration re-admit
		t.Errorf("admits = %d, want 3", admits)
	}
	if resyncs == 0 {
		t.Errorf("migration resynced the session but no resyncs counted")
	}
}
