package serve

import (
	"fmt"
	"sort"

	"d3t/internal/netsim"
	"d3t/internal/node"
	"d3t/internal/place"
	"d3t/internal/repository"
	"d3t/internal/resilience"
	"d3t/internal/sim"
)

// Fleet is a population of client sessions served by the repositories of
// one run. It implements the dissemination and resilience run observers:
// source ticks keep every session's reference signal current, repository
// deliveries fan out to that repository's sessions through the node
// core's per-client filters, crashes migrate the dead repository's
// sessions, and the session-churn plan's departures and arrivals
// interleave with all of it in simulation order.
//
// Each repository gets a serve-only node.Core (the overlay dissemination
// between repositories is simulated by the protocol's own cores): the
// fleet is the simulator-side transport of the serving layer, exactly as
// live and netio are its channel and TCP transports. The fleet itself
// keeps what a transport keeps — placement candidates, fidelity meters,
// churn schedule; the filter state and decision counters live in the
// core sessions.
//
// A Fleet is single-threaded, like the simulation engine driving it:
// Attach the population, Seed the initial values once the overlay is
// built, run the simulation with the fleet as its observer, then read
// Finalize.
type Fleet struct {
	net   *netsim.Network
	repos []*repository.Repository // indexed by id-1
	cores []*node.Core             // indexed by id-1, serve-only
	opts  Options
	tr    fleetTransport
	ix    *place.Index

	sessions []*Session // plan order: session i is plan node i+1
	byName   map[string]*Session
	byItem   map[string][]*Session
	alive    map[repository.ID]bool
	orphans  map[*Session]bool // want to be attached, found no room

	// Query catalogue (see queries.go). Query sessions live in byName and
	// byItem — admission, filtering, migration and source metering treat
	// them exactly like clients — but not in sessions, so client-facing
	// stats and the churn plan's indexing stay client-only.
	queries   []*QuerySession
	qByName   map[string]*QuerySession
	qByItem   map[string][]*QuerySession
	qOf       map[*Session]*QuerySession
	qInterval sim.Time

	src     map[string]float64
	initial map[string]float64

	events []sessionEvent
	next   int

	stats Stats
}

// fleetTransport receives the cores' client-side decisions and applies
// them to the sessions' fidelity meters.
type fleetTransport struct {
	f   *Fleet
	now sim.Time
}

func (t *fleetTransport) Now() sim.Time { return t.now }

func (t *fleetTransport) SendToDependent(repository.ID, string, float64, bool) bool {
	return false // serve-only cores never fan to dependents
}

func (t *fleetTransport) SendToClient(ns *node.Session, item string, v float64, resync bool) {
	switch s := ns.Tag().(type) {
	case *Session:
		s.meterFor(item).deliver(t.now, v)
		if resync {
			t.f.stats.Resyncs++
		} else {
			t.f.stats.Delivered++
		}
	case *QuerySession:
		t.f.queryDeliver(s, t.now, item, v, resync)
	}
}

// sessionEvent is one scheduled churn action.
type sessionEvent struct {
	at     sim.Time
	idx    int
	depart bool
}

// NewFleet builds an empty fleet over the repository population. The
// repositories must have ids 1..n matching the physical network's
// endpoints; the fleet keeps the pointers, so needs derived and serving
// sets augmented later are visible to admission and migration.
func NewFleet(net *netsim.Network, repos []*repository.Repository, opts Options) (*Fleet, error) {
	f := &Fleet{
		net:     net,
		repos:   repos,
		cores:   make([]*node.Core, len(repos)),
		opts:    opts,
		byName:  make(map[string]*Session),
		byItem:  make(map[string][]*Session),
		alive:   make(map[repository.ID]bool),
		orphans: make(map[*Session]bool),
		src:     make(map[string]float64),
		qByName: make(map[string]*QuerySession),
		qByItem: make(map[string][]*QuerySession),
		qOf:     make(map[*Session]*QuerySession),
	}
	// The concrete fleet keeps the overflow ring off: overflow stays in
	// strict nearest-first order, preserving historical placements (and
	// the golden figures) exactly. The virtual fleet opts in at scale.
	f.ix = place.New(net, len(repos), place.Options{})
	f.qInterval = opts.Interval
	if f.qInterval <= 0 {
		f.qInterval = 1
	}
	f.tr.f = f
	for i, r := range repos {
		if r.ID != repository.ID(i+1) {
			return nil, fmt.Errorf("serve: repository %d at index %d (want contiguous ids from 1)", r.ID, i)
		}
		f.alive[r.ID] = true
		f.cores[i] = node.New(r, nil, node.Options{ServeOnly: true, SessionCap: opts.Cap})
		// The serving core shares the repository's observer with the
		// dissemination core of the same run (record paths are atomic),
		// so one snapshot covers both roles of a repository.
		f.cores[i].SetObs(opts.Obs.Node(r.ID))
	}
	if opts.Plan != nil {
		for _, ft := range opts.Plan.Faults {
			idx := int(ft.Node) - 1
			f.events = append(f.events, sessionEvent{at: ft.At, idx: idx, depart: true})
			if ft.RejoinAt > 0 {
				f.events = append(f.events, sessionEvent{at: ft.RejoinAt, idx: idx})
			}
		}
		sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].at < f.events[j].at })
	}
	return f, nil
}

// core returns the serving core of repository id.
func (f *Fleet) core(id repository.ID) *node.Core { return f.cores[id-1] }

// Attach admits one client: it is placed on the nearest repository (by
// delay from the client's home endpoint, Client.Repo as generated) that
// is under the session cap, redirecting to the next candidate when full.
// The client's Repo field is rewritten to the placement, so deriving
// repository needs from the population after attachment reflects where
// each client actually landed.
func (f *Fleet) Attach(c *repository.Client) (*Session, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if int(c.Repo) > len(f.repos) {
		return nil, fmt.Errorf("serve: client %q homed at unknown repository %d", c.Name, c.Repo)
	}
	if f.byName[c.Name] != nil {
		return nil, fmt.Errorf("serve: duplicate session %q", c.Name)
	}
	s := newSession(c.Name, c.Repo, c.Wants)
	s.ns.SetTag(s)
	f.byName[c.Name] = s
	target := f.place(s, true)
	if target == repository.NoID {
		delete(f.byName, c.Name)
		return nil, fmt.Errorf("serve: no repository to place client %q on", c.Name)
	}
	f.attach(s, target, 0)
	order := f.ix.Order(s.Home)
	if target != order[0] {
		s.redirected = true
		f.stats.Redirects++
		// The redirect is charged to the nearest repository (the one
		// that turned the client away); its latency is the admission
		// walk's cost — a round trip to every candidate tried, the
		// target included.
		if on := f.opts.Obs.Node(order[0]); on != nil {
			var lat sim.Time
			for _, cand := range order {
				lat += 2 * f.net.Delay[s.Home][cand]
				if cand == target {
					break
				}
			}
			on.Redirect1()
			on.ObserveRedirectLatency(int64(lat))
		}
	}
	c.Repo = target
	f.sessions = append(f.sessions, s)
	for _, x := range s.items {
		f.byItem[x] = append(f.byItem[x], s)
	}
	f.stats.Sessions++
	return s, nil
}

// AttachAll admits a whole population in order.
func (f *Fleet) AttachAll(clients []*repository.Client) error {
	for _, c := range clients {
		if _, err := f.Attach(c); err != nil {
			return err
		}
	}
	return nil
}

// place asks the shared placement index for the repository to serve the
// session, or NoID when none qualifies. Initial placement (before
// repository needs exist) requires only liveness and cap room, falling
// back to the least-loaded live repository when every one is full; later
// placements (migration, re-arrival) first require the candidate to
// serve every watched item at the client's tolerance, then drop that
// requirement rather than strand the session.
func (f *Fleet) place(s *Session, initialPlacement bool) repository.ID {
	var serves func(repository.ID) bool
	if !initialPlacement {
		serves = func(id repository.ID) bool { return f.core(id).CanServeSession(s.Wants) }
	}
	id, _ := f.ix.Place(f, s.Home, s.Repo, place.Key(s.Name), serves, initialPlacement)
	return id
}

// Alive, HasRoom and Load implement place.State over the fleet's own
// bookkeeping.
func (f *Fleet) Alive(id repository.ID) bool   { return f.alive[id] }
func (f *Fleet) HasRoom(id repository.ID) bool { return f.core(id).HasSessionRoom() }
func (f *Fleet) Load(id repository.ID) int     { return f.core(id).SessionCount() }

// attach wires the session into the repository's core and starts its
// meters; the core resyncs it to the repository's current copies (a
// no-op at initial attachment, before Seed).
func (f *Fleet) attach(s *Session, id repository.ID, now sim.Time) {
	s.Repo = id
	for i := range s.meters {
		s.meters[i].attach(now)
	}
	if qs := f.qOf[s]; qs != nil {
		qs.attached = true
		qs.gate(now)
	}
	delete(f.orphans, s)
	f.tr.now = now
	f.core(id).ForceAdmit(s.ns, &f.tr)
}

// detach unwires the session from its repository and stops its meters.
func (f *Fleet) detach(s *Session, now sim.Time) {
	id := s.Repo
	if id == repository.NoID {
		return
	}
	f.core(id).DropSession(s.Name)
	s.Repo = repository.NoID
	for i := range s.meters {
		s.meters[i].detach(now)
	}
	if qs := f.qOf[s]; qs != nil {
		qs.attached = false
		qs.gate(now)
	}
}

// Seed initializes the source signal, every repository core's copy, and
// every session's copy to the items' initial values, as if all clients
// joined fully synchronized. Call it after the overlay is built (serving
// sets are final) and before the run.
func (f *Fleet) Seed(initial map[string]float64) {
	f.initial = initial
	for x, v := range initial {
		f.src[x] = v
	}
	for _, core := range f.cores {
		for x, v := range initial {
			core.Seed(x, v)
		}
	}
	for _, s := range f.sessions {
		for i, x := range s.items {
			if v, ok := initial[x]; ok {
				m := &s.meters[i]
				m.src, m.have = v, v
				m.refresh()
				s.ns.SeedValue(x, v)
			}
		}
	}
	for _, qs := range f.queries {
		for i, x := range qs.s.items {
			if v, ok := initial[x]; ok {
				m := &qs.s.meters[i]
				m.src, m.have = v, v
				m.refresh()
				qs.s.ns.SeedValue(x, v)
			}
		}
	}
	f.seedQueries(initial)
}

// catchUp executes every scheduled churn event due at or before now.
func (f *Fleet) catchUp(now sim.Time) {
	for f.next < len(f.events) && f.events[f.next].at <= now {
		e := f.events[f.next]
		f.next++
		if e.idx < 0 || e.idx >= len(f.sessions) {
			continue // plan sized for a larger population than attached
		}
		s := f.sessions[e.idx]
		if e.depart {
			if !s.Attached() && !f.orphans[s] {
				continue // already gone
			}
			f.detach(s, e.at)
			delete(f.orphans, s)
			f.stats.Departures++
			continue
		}
		if s.Attached() || f.orphans[s] {
			continue // already back (or waiting to be)
		}
		f.stats.Arrivals++
		if target := f.place(s, false); target != repository.NoID {
			f.attach(s, target, e.at)
		} else {
			f.orphans[s] = true
			f.stats.Orphaned++
		}
	}
}

// ObserveSource keeps every watching session's reference signal current.
func (f *Fleet) ObserveSource(now sim.Time, item string, v float64) {
	f.catchUp(now)
	f.src[item] = v
	for _, s := range f.byItem[item] {
		s.meterFor(item).srcUpdate(now, v)
	}
	f.observeQuerySource(now, item, v)
}

// ObserveDeliver runs a repository's delivery through its serving core:
// the core records the value and fans it out to the repository's
// sessions through the per-client coherency filter — the same Eqs. 3 and
// 7 test the tree applies between repositories, applied once more at the
// leaf with the repository's own serving tolerance as cSelf. Eq. 3 alone
// would let a client silently drift by up to its tolerance *plus* the
// repository's (the Section 5 missed-update problem, at the client);
// Eq. 7 forwards the risky updates too, so a coherent repository always
// implies coherent clients. Filtered decisions are counted in the core
// sessions; they are the fan-out work the serving layer saves.
func (f *Fleet) ObserveDeliver(now sim.Time, repo repository.ID, item string, v float64) {
	f.catchUp(now)
	f.tr.now = now
	f.core(repo).Apply(item, v, &f.tr)
}

// ObserveCrash migrates the dead repository's sessions onto the nearest
// live alternative with room (preferring ones already serving their
// items), resyncing each to its new repository's current copy. Sessions
// that find no room are orphaned and retry when a repository rejoins.
func (f *Fleet) ObserveCrash(now sim.Time, id repository.ID) {
	f.catchUp(now)
	f.alive[id] = false
	core := f.core(id)
	var stranded []*Session
	for _, name := range core.SessionNames() {
		stranded = append(stranded, f.byName[name])
	}
	// Migrate in the order the sessions attached to the dead repository,
	// so capacity contention resolves exactly as it arrived.
	sort.Slice(stranded, func(i, j int) bool { return stranded[i].ns.AttachSeq() < stranded[j].ns.AttachSeq() })
	for _, s := range stranded {
		f.detach(s, now)
		if target := f.place(s, false); target != repository.NoID {
			f.attach(s, target, now)
			f.stats.Migrations++
			f.opts.Obs.Node(target).Migrate1()
		} else {
			f.orphans[s] = true
			f.stats.Orphaned++
		}
	}
}

// ObserveRejoin marks the repository live again and retries orphaned
// sessions (in admission order) against the enlarged candidate set.
func (f *Fleet) ObserveRejoin(now sim.Time, id repository.ID) {
	f.catchUp(now)
	f.alive[id] = true
	for _, s := range f.sessions {
		if !f.orphans[s] {
			continue
		}
		if target := f.place(s, false); target != repository.NoID {
			f.attach(s, target, now)
			f.stats.Migrations++
			f.opts.Obs.Node(target).Migrate1()
		}
	}
	for _, qs := range f.queries {
		if !f.orphans[qs.s] {
			continue
		}
		if target := f.place(qs.s, false); target != repository.NoID {
			f.attach(qs.s, target, now)
			f.stats.Migrations++
			f.opts.Obs.Node(target).Migrate1()
		}
	}
}

// Session returns a session by client name.
func (f *Fleet) Session(name string) *Session { return f.byName[name] }

// Sessions returns the population in admission order.
func (f *Fleet) Sessions() []*Session { return f.sessions }

// ClientFidelity returns every session's observed fidelity at the
// horizon, keyed by client name.
func (f *Fleet) ClientFidelity(horizon sim.Time) map[string]float64 {
	out := make(map[string]float64, len(f.sessions))
	for _, s := range f.sessions {
		out[s.Name] = s.Fidelity(horizon)
	}
	return out
}

// Finalize flushes churn events through the horizon and returns the
// run's serving-layer statistics, including the client-observed fidelity
// aggregates.
func (f *Fleet) Finalize(horizon sim.Time) Stats {
	f.catchUp(horizon)
	st := f.stats
	for _, s := range f.sessions {
		st.Filtered += s.Filtered()
	}
	st.MeanFidelity, st.WorstFidelity = 1, 1
	if len(f.sessions) > 0 {
		var sum float64
		worst := 1.0
		for _, s := range f.sessions {
			fid := s.Fidelity(horizon)
			sum += fid
			if fid < worst {
				worst = fid
			}
		}
		st.MeanFidelity = sum / float64(len(f.sessions))
		st.WorstFidelity = worst
	}
	st.LossPercent = 100 * (1 - st.MeanFidelity)
	return st
}

// Interface conformance: the fleet observes both the plain and the
// resilient runners.
var _ resilience.Observer = (*Fleet)(nil)
