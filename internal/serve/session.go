package serve

import (
	"fmt"

	"d3t/internal/coherency"
	"d3t/internal/node"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// Session is one client's live subscription: the items it watches at its
// own tolerances, the repository currently serving it, its last-delivered
// copy of every item, and the fidelity it has observed so far.
type Session struct {
	// Name identifies the session (the client's name).
	Name string
	// Home is the endpoint the client is co-located with; candidate
	// repositories are ranked by delay from it.
	Home repository.ID
	// Repo is the repository currently serving the session, or
	// repository.NoID while detached (departed or orphaned).
	Repo repository.ID
	// Wants maps item -> the client's own coherency tolerance.
	Wants map[string]coherency.Requirement

	// ns is the session's core-side state: the watch-list filter state
	// and decision counters, shared with whichever node.Core currently
	// serves the session.
	ns *node.Session
	// items is the watch list in sorted order, cached once at
	// construction — every per-item sweep (attach, detach, seed,
	// fidelity) walks it instead of re-sorting the Wants map.
	items []string
	// meters measures client-observed coherency per item over the
	// session's attached lifetime; meters[i] belongs to items[i]. The
	// meters are inline (not pointer-boxed), so the delivery hot path
	// resolves an index and touches the struct directly.
	meters []meter
	// midx maps item -> index into items/meters.
	midx map[string]int32
	// redirected records whether admission skipped the nearest candidate.
	redirected bool
}

// newSession builds a detached session over the watch list, caching the
// sorted item order and laying the meters out inline.
func newSession(name string, home repository.ID, wants map[string]coherency.Requirement) *Session {
	s := &Session{
		Name:   name,
		Home:   home,
		Repo:   repository.NoID,
		Wants:  wants,
		ns:     node.NewSession(name, wants),
		items:  sortedItems(wants),
		meters: make([]meter, len(wants)),
		midx:   make(map[string]int32, len(wants)),
	}
	for i, x := range s.items {
		s.meters[i] = meter{c: wants[x]}
		s.midx[x] = int32(i)
	}
	return s
}

// meterFor returns the session's meter for item, or nil when unwatched.
func (s *Session) meterFor(item string) *meter {
	i, ok := s.midx[item]
	if !ok {
		return nil
	}
	return &s.meters[i]
}

// Value returns the session's current copy of item.
func (s *Session) Value(item string) (float64, bool) {
	m := s.meterFor(item)
	if m == nil {
		return 0, false
	}
	return m.have, true
}

// Attached reports whether the session is currently served.
func (s *Session) Attached() bool { return s.Repo != repository.NoID }

// Delivered and Filtered report the session's per-update decisions, as
// counted by the serving core.
func (s *Session) Delivered() uint64 { return s.ns.Delivered() }
func (s *Session) Filtered() uint64  { return s.ns.Filtered() }

// Redirected reports whether admission placed the session on other than
// its nearest repository.
func (s *Session) Redirected() bool { return s.redirected }

// Fidelity returns the client-observed fidelity up to now: the mean over
// watched items of the fraction of attached time the client's copy was
// within its own tolerance of the source. A session that was never
// attached observed nothing and reports 1 (vacuous).
func (s *Session) Fidelity(now sim.Time) float64 {
	var sum float64
	var n int
	for i := range s.meters {
		f, ok := s.meters[i].fidelity(now)
		if !ok {
			continue
		}
		sum += f
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// String describes the session.
func (s *Session) String() string {
	return fmt.Sprintf("session %s: repo %d, %d items", s.Name, s.Repo, len(s.Wants))
}

// meter integrates one (session, item) pair's coherency over the
// session's attached lifetime. Like coherency.Tracker it exploits that
// both signals are piecewise constant, but it additionally supports
// detach/attach so fidelity is measured only while the client is served
// — a departed client observes nothing.
type meter struct {
	c coherency.Requirement

	src, have float64
	attached  bool
	inViol    bool
	last      sim.Time // time of the most recent state change
	span      sim.Time // total attached observation time
	viol      sim.Time // attached time spent out of tolerance
}

// advance accounts [m.last, now) against the current state.
func (m *meter) advance(now sim.Time) {
	if now < m.last {
		panic(fmt.Sprintf("serve: meter moved backwards from %v to %v", m.last, now))
	}
	if m.attached {
		m.span += now - m.last
		if m.inViol {
			m.viol += now - m.last
		}
	}
	m.last = now
}

func (m *meter) refresh() { m.inViol = m.c.Violated(m.src, m.have) }

// srcUpdate records a source value change.
func (m *meter) srcUpdate(now sim.Time, v float64) {
	m.advance(now)
	m.src = v
	m.refresh()
}

// deliver records a value delivered to the client.
func (m *meter) deliver(now sim.Time, v float64) {
	m.advance(now)
	m.have = v
	m.refresh()
}

// attach starts (or resumes) observation at now.
func (m *meter) attach(now sim.Time) {
	m.advance(now)
	m.attached = true
}

// detach stops observation at now; the client's copy is kept (a
// returning session resyncs before it counts again).
func (m *meter) detach(now sim.Time) {
	m.advance(now)
	m.attached = false
}

// fidelity returns the attached-time fidelity up to now, and false when
// the meter never observed any attached time.
func (m *meter) fidelity(now sim.Time) (float64, bool) {
	span, viol := m.span, m.viol
	if m.attached && now > m.last {
		span += now - m.last
		if m.inViol {
			viol += now - m.last
		}
	}
	if span <= 0 {
		return 1, false
	}
	return 1 - float64(viol)/float64(span), true
}
