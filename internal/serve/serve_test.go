package serve

import (
	"fmt"
	"reflect"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// population builds n repositories with ids 1..n serving item X at the
// given tolerance.
func population(n int, tol coherency.Requirement) []*repository.Repository {
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 4)
		repos[i].Needs["X"] = tol
		repos[i].Serving["X"] = tol
	}
	return repos
}

func client(name string, home repository.ID, wants map[string]coherency.Requirement) *repository.Client {
	return &repository.Client{Name: name, Repo: home, Wants: wants}
}

func TestCandidatesNearestFirst(t *testing.T) {
	// Uniform network: every pair equidistant, self-delay zero — the home
	// repository must rank first, the rest in id order.
	net := netsim.Uniform(4, sim.Millisecond)
	got := Candidates(net, 3, 4)
	want := []repository.ID{3, 1, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("candidates from home 3 = %v, want %v", got, want)
	}
}

func TestPlacementCapOverflowRedirects(t *testing.T) {
	net := netsim.Uniform(3, sim.Millisecond)
	repos := population(3, 0.5)
	f, err := NewFleet(net, repos, Options{Cap: 1})
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]coherency.Requirement{"X": 0.5}
	// Two clients homed at repository 1: the first takes it, the second
	// must overflow to the next candidate (id 2) and count a redirect.
	a, err := f.Attach(client("a", 1, wants))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Attach(client("b", 1, map[string]coherency.Requirement{"X": 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if a.Repo != 1 || a.Redirected() {
		t.Errorf("first client placed at %d (redirected=%v), want its home 1", a.Repo, a.Redirected())
	}
	if b.Repo != 2 || !b.Redirected() {
		t.Errorf("overflow client placed at %d (redirected=%v), want redirect to 2", b.Repo, b.Redirected())
	}
	if st := f.Finalize(0); st.Redirects != 1 {
		t.Errorf("redirects = %d, want 1", st.Redirects)
	}
}

func TestPlacementAllFullFallsBackToLeastLoaded(t *testing.T) {
	net := netsim.Uniform(2, sim.Millisecond)
	repos := population(2, 0.5)
	f, err := NewFleet(net, repos, Options{Cap: 1})
	if err != nil {
		t.Fatal(err)
	}
	wants := func() map[string]coherency.Requirement {
		return map[string]coherency.Requirement{"X": 0.5}
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Attach(client(fmt.Sprintf("c%d", i), 1, wants())); err != nil {
			t.Fatal(err)
		}
	}
	// Both repositories at cap: the third client must still be placed.
	s, err := f.Attach(client("c2", 1, wants()))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Attached() {
		t.Fatal("overflow client left unplaced")
	}
}

// TestFilteredFanOut is the subsystem's core behavior: attach, update,
// and check that only updates exceeding the client's own tolerance reach
// the session, while the meter integrates the observed coherency.
func TestFilteredFanOut(t *testing.T) {
	net := netsim.Uniform(1, sim.Millisecond)
	repos := population(1, 0.1)
	f, err := NewFleet(net, repos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.Attach(client("a", 1, map[string]coherency.Requirement{"X": 1.0}))
	if err != nil {
		t.Fatal(err)
	}
	f.Seed(map[string]float64{"X": 100})

	// The repository (tolerance 0.1) receives every small move; the
	// client (tolerance 1.0) must see only the large one.
	f.ObserveSource(sim.Second, "X", 100.5)
	f.ObserveDeliver(sim.Second, 1, "X", 100.5) // |Δ|=0.5 ≤ 1 → filtered
	f.ObserveSource(2*sim.Second, "X", 102)
	f.ObserveDeliver(2*sim.Second, 1, "X", 102) // |Δ|=2 > 1 → delivered

	if v, _ := s.Value("X"); v != 102 {
		t.Errorf("session copy %v, want 102 after the violating update", v)
	}
	if s.Delivered() != 1 || s.Filtered() != 1 {
		t.Errorf("delivered/filtered = %d/%d, want 1/1", s.Delivered(), s.Filtered())
	}
	// Coherency timeline at tolerance 1.0: in tolerance on [0,2s) (the
	// 0.5 move never violates), violated nowhere — the source jump to 102
	// at 2s is repaired in the same instant. Fidelity must be exactly 1.
	if fid := s.Fidelity(4 * sim.Second); fid != 1 {
		t.Errorf("fidelity %v, want 1", fid)
	}
}

// TestFidelityIntegratesViolations pins the meter arithmetic: a source
// move the client never receives accrues violation time until the next
// delivery.
func TestFidelityIntegratesViolations(t *testing.T) {
	net := netsim.Uniform(1, sim.Millisecond)
	repos := population(1, 0.1)
	f, _ := NewFleet(net, repos, Options{})
	s, err := f.Attach(client("a", 1, map[string]coherency.Requirement{"X": 1.0}))
	if err != nil {
		t.Fatal(err)
	}
	f.Seed(map[string]float64{"X": 100})

	// Source jumps out of tolerance at 2s; the repair arrives at 6s.
	f.ObserveSource(2*sim.Second, "X", 105)
	f.ObserveDeliver(6*sim.Second, 1, "X", 105)
	// Violated on [2s,6s) of a 10s horizon: fidelity 0.6.
	if fid := s.Fidelity(10 * sim.Second); fid != 0.6 {
		t.Errorf("fidelity %v, want 0.6", fid)
	}
}

func TestSessionChurnPlanDeterminism(t *testing.T) {
	a, err := ParseSessionPlan("churn:10:20", 50, 400, sim.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseSessionPlan("churn:10:20", 50, 400, sim.Second, 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same spec and seed produced different session plans")
	}
	if len(a.Faults) == 0 {
		t.Fatal("churn plan scheduled no departures")
	}
	for _, ft := range a.Faults {
		if ft.Node < 1 || int(ft.Node) > 50 {
			t.Errorf("departure targets session %d outside 1..50", ft.Node)
		}
	}
}

func TestChurnDepartureStopsObservation(t *testing.T) {
	plan, err := ParseSessionPlan("crash:1@5+5", 1, 20, sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.Uniform(1, sim.Millisecond)
	repos := population(1, 0.1)
	f, _ := NewFleet(net, repos, Options{Plan: plan})
	s, err := f.Attach(client("a", 1, map[string]coherency.Requirement{"X": 1.0}))
	if err != nil {
		t.Fatal(err)
	}
	f.Seed(map[string]float64{"X": 100})

	// The source jumps at 1s and the repository relays it immediately
	// (|105−100| > 1 → delivered to the client in the same instant). The
	// client departs at 5s and returns at 10s; the return resync finds it
	// already holding the repository's copy.
	f.ObserveSource(sim.Second, "X", 105)
	f.ObserveDeliver(sim.Second, 1, "X", 105)
	st := f.Finalize(20 * sim.Second)
	if st.Departures != 1 || st.Arrivals != 1 {
		t.Errorf("departures/arrivals = %d/%d, want 1/1", st.Departures, st.Arrivals)
	}
	if !s.Attached() {
		t.Error("session not re-attached after its churn cycle")
	}
	if fid := s.Fidelity(20 * sim.Second); fid != 1 {
		t.Errorf("fidelity %v, want 1 (delivered before departure, resynced on return)", fid)
	}
}

func TestCrashMigratesWithResync(t *testing.T) {
	net := netsim.Uniform(2, sim.Millisecond)
	repos := population(2, 0.1)
	f, _ := NewFleet(net, repos, Options{})
	s, err := f.Attach(client("a", 1, map[string]coherency.Requirement{"X": 1.0}))
	if err != nil {
		t.Fatal(err)
	}
	f.Seed(map[string]float64{"X": 100})

	// Repository 2 converges to 105; repository 1 (the session's) dies
	// before relaying it.
	f.ObserveSource(sim.Second, "X", 105)
	f.ObserveDeliver(sim.Second, 2, "X", 105)
	f.ObserveCrash(2*sim.Second, 1)

	if s.Repo != 2 {
		t.Fatalf("session on repository %d after crash, want migration to 2", s.Repo)
	}
	if v, _ := s.Value("X"); v != 105 {
		t.Errorf("session copy %v after migration resync, want 105", v)
	}
	st := f.Finalize(4 * sim.Second)
	if st.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", st.Migrations)
	}
	if st.Resyncs != 1 {
		t.Errorf("resyncs = %d, want 1", st.Resyncs)
	}
}

func TestCrashWithNoRoomOrphansThenRejoinRecovers(t *testing.T) {
	net := netsim.Uniform(2, sim.Millisecond)
	repos := population(2, 0.1)
	f, _ := NewFleet(net, repos, Options{Cap: 1})
	a, err := f.Attach(client("a", 1, map[string]coherency.Requirement{"X": 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach(client("b", 2, map[string]coherency.Requirement{"X": 0.5})); err != nil {
		t.Fatal(err)
	}
	f.Seed(map[string]float64{"X": 100})

	// Repository 1 dies; repository 2 is at cap — session a is orphaned.
	f.ObserveCrash(sim.Second, 1)
	if a.Attached() {
		t.Fatal("session attached despite every live repository being full")
	}
	// Repository 1 rejoins; the orphan re-homes onto it.
	f.ObserveRejoin(3*sim.Second, 1)
	if a.Repo != 1 {
		t.Fatalf("orphan on repository %d after rejoin, want 1", a.Repo)
	}
	st := f.Finalize(5 * sim.Second)
	if st.Orphaned != 1 || st.Migrations != 1 {
		t.Errorf("orphaned/migrations = %d/%d, want 1/1", st.Orphaned, st.Migrations)
	}
}

func TestMigrationPrefersServingCapableRepository(t *testing.T) {
	net := netsim.Uniform(3, sim.Millisecond)
	repos := population(3, 0.1)
	// Repository 2 (the nearest alternative by id order) serves X too
	// loosely for the client; repository 3 serves it stringently.
	repos[1].Serving["X"] = 2.0
	f, _ := NewFleet(net, repos, Options{})
	s, err := f.Attach(client("a", 1, map[string]coherency.Requirement{"X": 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	f.Seed(map[string]float64{"X": 100})
	f.ObserveCrash(sim.Second, 1)
	if s.Repo != 3 {
		t.Errorf("migrated to repository %d, want 3 (the one serving X at the client's tolerance)", s.Repo)
	}
}

func TestFleetDeterminism(t *testing.T) {
	run := func() Stats {
		items := []string{"X", "Y", "Z"}
		net := netsim.Uniform(4, sim.Millisecond)
		repos := make([]*repository.Repository, 4)
		for i := range repos {
			repos[i] = repository.New(repository.ID(i+1), 4)
			for _, x := range items {
				repos[i].Needs[x], repos[i].Serving[x] = 0.1, 0.1
			}
		}
		clients, err := repository.GenerateClients(repository.ClientWorkload{
			Clients: 24, Repos: []repository.ID{1, 2, 3, 4}, Items: items,
			ItemsPerClient: 2, StringentFrac: 0.5, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := ParseSessionPlan("churn:20:10", len(clients), 100, sim.Second, 9)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFleet(net, repos, Options{Cap: 8, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AttachAll(clients); err != nil {
			t.Fatal(err)
		}
		f.Seed(map[string]float64{"X": 100, "Y": 50, "Z": 10})
		for i := 1; i <= 100; i++ {
			v := 100 + float64(i%7)
			f.ObserveSource(sim.Time(i)*sim.Second, "X", v)
			f.ObserveDeliver(sim.Time(i)*sim.Second+sim.Millisecond, repository.ID(1+i%4), "X", v)
		}
		return f.Finalize(100 * sim.Second)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Departures == 0 {
		t.Error("churn plan executed no departures")
	}
}
