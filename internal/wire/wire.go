// Package wire implements the netio backend's binary wire format: a
// length-prefixed, fixed-layout little-endian codec for the closed set
// of dissemination frames (hello, update, batch, subscribe, accept,
// redirect). It replaces encoding/gob on the TCP hot path: no per-frame
// reflection, one contiguous buffer and one write per frame, pooled
// encode buffers, and decode allocation hard-capped so a malformed
// length prefix cannot be used to exhaust memory.
//
// # Frame layout
//
// Every frame is an 8-byte header followed by a body:
//
//	offset  size  field
//	0       4     body length n (uint32, little-endian)
//	4       1     version (currently 1)
//	5       1     kind
//	6       1     flags (bit 0 = resync, bit 1 = trace; others must be 0)
//	7       1     reserved (must be 0)
//	8       n     body (per-kind layout below)
//
// A string field is a uint16 little-endian byte length followed by that
// many bytes (no terminator, 64 KiB cap). A float64 field is its IEEE
// 754 bits, little-endian. Per-kind bodies:
//
//	hello      From (int64)
//	update     Item (string) · Value (float64)
//	batch      count (uint32) · count × (Item (string) · Value (float64))
//	subscribe  Name (string) · count (uint32) · count × (Item (string) ·
//	           Requirement (float64)), entries in strictly increasing
//	           item order
//	accept     (empty)
//	redirect   count (uint16) · count × (Addr (string)), preference order
//
// A batch body is the vectored form of PR 5's one-write-per-child
// batches: every update of a fan-out pass serializes into one
// contiguous region under a single length prefix, so the whole batch
// costs one buffer and one TCP write however many updates it carries.
//
// The resync flag is meaningful on hello (a failed-over dependent asks
// its new parent for a full catch-up push) and on update (a catch-up
// push to a freshly admitted or migrated client session); it must be 0
// on every other kind.
//
// The trace flag is meaningful only on a live (non-resync) update: it
// marks a sampled update carrying its observability trace, and appends
// a trace section after the update body:
//
//	update+trace  Item (string) · Value (float64) · TraceID (uint64,
//	              nonzero) · count (uint16) · count × (Node (int64) ·
//	              At (int64, microseconds))
//
// Each (Node, At) pair is one hop stamp accumulated upstream; the
// receiver appends its own stamp before forwarding, so the hop list
// down any root-to-leaf path is monotone in At. Untraced updates are
// byte-identical with and without the feature compiled in.
//
// The query flag is meaningful only on a subscribe frame: it marks a
// derived-data query subscription (internal/query) and appends the
// query's spec string after the wants entries:
//
//	subscribe+query  Name (string) · count (uint32) · count × (Item
//	                 (string) · Requirement (float64)) · Query (string,
//	                 non-empty; the query spec grammar of query.Parse)
//
// The wants entries are the query's inputs at their allocated per-input
// tolerances, so a pre-query server that ignored the flag would still
// serve the inputs coherently; rejecting the undefined bit cleanly (as
// pre-query builds do) is strictly safer, and the same upgrade rule as
// the trace flag applies. Plain subscribes are byte-identical with and
// without the extension compiled in.
//
// Decoding is strict: unknown versions, unknown kinds, non-zero
// reserved bits, out-of-order subscribe entries, truncated fields and
// trailing body bytes are all errors. Strictness buys a canonical
// format — every valid byte sequence has exactly one decoding, and
// every decoded frame re-encodes to exactly the bytes it came from —
// which is what the fuzz harnesses and golden vectors in this package's
// tests pin down.
//
// # Versioning rule
//
// Any change to the layout above — a new field, a new kind, a moved
// byte — must increment Version, regenerate testdata/*.bin with
// `go test ./internal/wire -run TestGoldenVectors -update`, and update
// the byte-layout table in DESIGN.md's "Wire format" section. Version
// is checked on every frame header, so peers built at different
// versions fail fast with ErrVersion instead of misparsing each other;
// there is deliberately no in-band negotiation — the overlay is
// deployed as a unit.
//
// One carve-out: a flag-gated trailer (like the trace section) does not
// bump Version, because the byte stream of every frame not carrying the
// flag is unchanged. A pre-trace peer receiving a traced frame rejects
// it cleanly as an undefined flag bit (ErrMalformed) rather than
// misparsing it — so tracing, like any future flag-gated extension, may
// only be switched on once the whole overlay is upgraded.
package wire

import (
	"errors"

	"d3t/internal/coherency"
	"d3t/internal/obs"
	"d3t/internal/repository"
)

// Version is the wire-format version stamped into and required of every
// frame header. Bump it on any layout change (see the package comment's
// versioning rule).
const Version = 1

// MaxFrameBytes caps a frame's declared body length. A peer announcing
// a larger body is malformed (or hostile) and its connection is torn
// down before any allocation happens.
const MaxFrameBytes = 16 << 20

// headerSize is the fixed frame header: 4-byte length, version, kind,
// flags, reserved.
const headerSize = 8

// The defined flag bits; all others must be zero. flagTrace is valid
// only on a live (non-resync) update frame; flagQuery only on a
// subscribe frame.
const (
	flagResync = 1 << 0
	flagTrace  = 1 << 1
	flagQuery  = 1 << 2
)

// Kind discriminates the frame set.
type Kind uint8

const (
	// KindHello registers a dependent on its parent's push path.
	KindHello Kind = iota + 1
	// KindUpdate pushes one (item, value) copy.
	KindUpdate
	// KindSubscribe opens a client session; answered with KindAccept
	// followed by resync updates, or KindRedirect.
	KindSubscribe
	KindAccept
	KindRedirect
	// KindBatch pushes every copy one fan-out pass produced for the
	// receiver, as one contiguous frame.
	KindBatch

	kindMax = KindBatch
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindUpdate:
		return "update"
	case KindSubscribe:
		return "subscribe"
	case KindAccept:
		return "accept"
	case KindRedirect:
		return "redirect"
	case KindBatch:
		return "batch"
	}
	return "unknown"
}

// Frame is the decoded form of one wire message; Kind discriminates
// which fields are meaningful (the same field set the gob codec
// carried, so the netio protocol logic is untouched by the codec swap).
type Frame struct {
	Kind Kind
	// From identifies the dependent on a hello frame.
	From repository.ID
	// Item and Value carry a single-update push.
	Item  string
	Value float64
	// Resync mirrors the header flag: a catch-up request on a hello, a
	// catch-up push on an update.
	Resync bool
	// Name and Wants carry a client session's identity and watch list on
	// a subscribe frame.
	Name  string
	Wants map[string]coherency.Requirement
	// Query carries a derived-data query spec on a subscribe frame (the
	// query flag on the wire); empty on a plain subscribe. The wants are
	// then the query's inputs at their allocated tolerances.
	Query string
	// Addrs carries alternative endpoints on a redirect frame.
	Addrs []string
	// Ups carries a multi-update batch on a batch frame.
	Ups []Update
	// TraceID and Hops carry the observability trace of a sampled
	// update. A nonzero TraceID marks the frame traced (the trace flag
	// on the wire); Hops are the per-hop stamps accumulated so far.
	TraceID uint64
	Hops    []obs.Hop
}

// Update is one (item, value) pair of a batch frame.
type Update struct {
	Item  string
	Value float64
}

// Sentinel errors, wrapped with context by Encoder/Decoder; match with
// errors.Is.
var (
	// ErrVersion marks a frame stamped with a version this build does
	// not speak.
	ErrVersion = errors.New("wire: version mismatch")
	// ErrFrameTooLarge marks a declared body length over MaxFrameBytes.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size cap")
	// ErrMalformed marks every other structural violation: unknown kind,
	// bad flags, truncated fields, trailing bytes, out-of-order
	// subscribe entries, oversized strings.
	ErrMalformed = errors.New("wire: malformed frame")
)
