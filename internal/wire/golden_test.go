package wire

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/obs"
)

// -update rewrites testdata/*.bin from the golden frame set. Run it
// after any deliberate layout change (with Version bumped); the diff in
// testdata is the reviewable record of the new format.
var update = flag.Bool("update", false, "rewrite testdata golden wire vectors")

// goldenFrames is one representative frame per kind (plus the resync
// variants), shared by the golden-vector test and the fuzz seed corpus.
func goldenFrames() []struct {
	name string
	f    Frame
} {
	return []struct {
		name string
		f    Frame
	}{
		{"hello", Frame{Kind: KindHello, From: 7}},
		{"hello_resync", Frame{Kind: KindHello, From: 3, Resync: true}},
		{"update", Frame{Kind: KindUpdate, Item: "AAPL", Value: 142.25}},
		{"update_resync", Frame{Kind: KindUpdate, Item: "MSFT", Value: 27.5, Resync: true}},
		{"update_traced", Frame{Kind: KindUpdate, Item: "AAPL", Value: 142.25, TraceID: 9, Hops: []obs.Hop{
			{Node: 0, At: 1_000_000},
			{Node: 2, At: 1_004_500},
		}}},
		{"batch", Frame{Kind: KindBatch, Ups: []Update{
			{Item: "AAPL", Value: 142.25},
			{Item: "MSFT", Value: 27.5},
			{Item: "AAPL", Value: 143},
		}}},
		{"subscribe", Frame{Kind: KindSubscribe, Name: "alice", Wants: map[string]coherency.Requirement{
			"AAPL": 0.5,
			"MSFT": 2,
		}}},
		{"subscribe_query", Frame{Kind: KindSubscribe, Name: "q0", Wants: map[string]coherency.Requirement{
			"AAPL": 0.05,
			"MSFT": 0.05,
		}, Query: "diff(AAPL,MSFT)@0.1"}},
		{"accept", Frame{Kind: KindAccept}},
		{"redirect", Frame{Kind: KindRedirect, Addrs: []string{"10.0.0.2:7070", "10.0.0.3:7070"}}},
	}
}

// frameEqual compares frames with bit-exact float comparison (so NaN
// payloads survive fuzz round trips) and without distinguishing nil
// from empty collections — the wire cannot carry that distinction.
func frameEqual(a, b *Frame) bool {
	if a.Kind != b.Kind || a.From != b.From || a.Item != b.Item ||
		math.Float64bits(a.Value) != math.Float64bits(b.Value) ||
		a.Resync != b.Resync || a.Name != b.Name || a.Query != b.Query ||
		a.TraceID != b.TraceID ||
		len(a.Wants) != len(b.Wants) || len(a.Addrs) != len(b.Addrs) ||
		len(a.Ups) != len(b.Ups) || len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	for k, v := range a.Wants {
		w, ok := b.Wants[k]
		if !ok || math.Float64bits(float64(v)) != math.Float64bits(float64(w)) {
			return false
		}
	}
	for i := range a.Addrs {
		if a.Addrs[i] != b.Addrs[i] {
			return false
		}
	}
	for i := range a.Ups {
		if a.Ups[i].Item != b.Ups[i].Item ||
			math.Float64bits(a.Ups[i].Value) != math.Float64bits(b.Ups[i].Value) {
			return false
		}
	}
	return true
}

// TestGoldenVectors pins the byte layout: every frame kind must encode
// byte-exactly to its committed testdata vector, and the vector must
// decode back to the frame and re-encode to itself. Any layout change
// shows up as a testdata diff (regenerate deliberately with -update,
// bumping Version per the package comment's rule).
func TestGoldenVectors(t *testing.T) {
	for _, g := range goldenFrames() {
		t.Run(g.name, func(t *testing.T) {
			path := filepath.Join("testdata", g.name+".bin")
			got, err := AppendFrame(nil, &g.f)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden vector (run with -update to generate): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding drifted from the committed vector\n got: %x\nwant: %x", got, want)
			}
			var dec Frame
			if err := NewDecoder(bytes.NewReader(want)).Decode(&dec); err != nil {
				t.Fatalf("golden vector does not decode: %v", err)
			}
			if !frameEqual(&g.f, &dec) {
				t.Fatalf("golden vector decoded to %+v, want %+v", dec, g.f)
			}
			again, err := AppendFrame(nil, &dec)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(again, want) {
				t.Fatalf("decode→encode is not the identity on the golden vector")
			}
		})
	}
}

// TestVersionCompatRule documents and enforces the versioning contract:
// every frame carries Version at byte 4, a frame stamped with any other
// version is rejected with ErrVersion, and bumping Version invalidates
// the committed vectors (TestGoldenVectors fails) until they are
// deliberately regenerated — so a layout change can never slip through
// as an invisible diff.
func TestVersionCompatRule(t *testing.T) {
	if Version != 1 {
		t.Fatalf("Version = %d; if this bump is deliberate, regenerate testdata with -update and update this pin", Version)
	}
	b, err := AppendFrame(nil, &Frame{Kind: KindAccept})
	if err != nil {
		t.Fatal(err)
	}
	if b[4] != Version {
		t.Fatalf("header byte 4 = %d, want Version %d", b[4], Version)
	}
	for _, v := range []byte{0, Version + 1, 0xff} {
		bad := append([]byte(nil), b...)
		bad[4] = v
		var f Frame
		err := NewDecoder(bytes.NewReader(bad)).Decode(&f)
		if !errors.Is(err, ErrVersion) {
			t.Errorf("version %d accepted (err=%v), want ErrVersion", v, err)
		}
	}
}

// TestGoldenVectorsCoverEveryKind keeps the golden set honest: adding a
// frame kind without a committed vector fails here.
func TestGoldenVectorsCoverEveryKind(t *testing.T) {
	seen := make(map[Kind]bool)
	for _, g := range goldenFrames() {
		seen[g.f.Kind] = true
	}
	for k := KindHello; k <= kindMax; k++ {
		if !seen[k] {
			t.Errorf("no golden vector for frame kind %v", k)
		}
	}
	if fmt.Sprint(Kind(0)) != "unknown" || fmt.Sprint(kindMax+1) != "unknown" {
		t.Errorf("Kind.String names an out-of-range kind")
	}
}
