package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"d3t/internal/coherency"
	"d3t/internal/obs"
	"d3t/internal/repository"
)

// Decoder reads frames from r. It is strict — anything but a canonical
// frame is an error — and allocation-capped: the declared body length
// is bounded by MaxFrameBytes, the body buffer grows only as bytes
// actually arrive, and entry counts are validated against the bytes
// present before any slice or map is sized from them, so a hostile
// length prefix cannot allocate unboundedly.
//
// Decode reuses the decoder's body buffer and the target frame's Ups
// slice: a decoded frame (its Ups in particular) is valid until the
// next Decode call on the same decoder/frame. Item strings are interned
// per decoder, so the steady-state update/batch path stops allocating
// once a connection has seen its item universe.
type Decoder struct {
	r    io.Reader
	hdr  [headerSize]byte
	body []byte
	// items interns item names: a direct-mapped cache indexed by an
	// inline FNV-1a hash. Collisions just overwrite, so it is bounded by
	// construction and costs one hash + one compare per item — cheap
	// enough for the per-update batch path.
	items [maxInterned]string
}

// NewDecoder returns a decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// maxInterned sizes the per-connection item-name cache (power of two).
const maxInterned = 1 << 12

// readChunk bounds how far the body buffer grows ahead of the bytes
// actually received.
const readChunk = 64 << 10

// Decode reads the next frame into f, replacing f's previous contents.
// A clean connection close between frames returns io.EOF verbatim; a
// close mid-frame returns io.ErrUnexpectedEOF; malformed input returns
// an error wrapping ErrVersion, ErrFrameTooLarge or ErrMalformed. After
// any error the stream is unsynchronized and must be torn down — there
// is no resynchronization scan.
func (d *Decoder) Decode(f *Frame) error {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return err
		}
		return fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(d.hdr[:4]))
	if n > MaxFrameBytes {
		return fmt.Errorf("wire: declared body length %d over the %d-byte cap: %w", n, MaxFrameBytes, ErrFrameTooLarge)
	}
	if v := d.hdr[4]; v != Version {
		return fmt.Errorf("wire: frame version %d, this build speaks %d: %w", v, Version, ErrVersion)
	}
	kind := Kind(d.hdr[5])
	if kind == 0 || kind > kindMax {
		return fmt.Errorf("wire: unknown frame kind %d: %w", d.hdr[5], ErrMalformed)
	}
	flags := d.hdr[6]
	if flags&^byte(flagResync|flagTrace|flagQuery) != 0 {
		return fmt.Errorf("wire: undefined flag bits %#x: %w", flags, ErrMalformed)
	}
	resync := flags&flagResync != 0
	if resync && kind != KindHello && kind != KindUpdate {
		return fmt.Errorf("wire: resync flag on a %v frame: %w", kind, ErrMalformed)
	}
	traced := flags&flagTrace != 0
	if traced && (kind != KindUpdate || resync) {
		return fmt.Errorf("wire: trace flag on a %s%v frame: %w", resyncPrefix(resync), kind, ErrMalformed)
	}
	queried := flags&flagQuery != 0
	if queried && kind != KindSubscribe {
		return fmt.Errorf("wire: query flag on a %v frame: %w", kind, ErrMalformed)
	}
	if d.hdr[7] != 0 {
		return fmt.Errorf("wire: non-zero reserved header byte %#x: %w", d.hdr[7], ErrMalformed)
	}
	if err := d.readBody(n); err != nil {
		return err
	}

	*f = Frame{Kind: kind, Resync: resync, Ups: f.Ups[:0]}
	c := cursor{b: d.body}
	switch kind {
	case KindHello:
		v, err := c.u64()
		if err != nil {
			return err
		}
		f.From = repository.ID(int64(v))
	case KindUpdate:
		raw, err := c.str()
		if err != nil {
			return err
		}
		f.Item = d.intern(raw)
		if f.Value, err = c.f64(); err != nil {
			return err
		}
		if traced {
			if f.TraceID, err = c.u64(); err != nil {
				return err
			}
			if f.TraceID == 0 {
				return fmt.Errorf("wire: traced update with zero trace id: %w", ErrMalformed)
			}
			count, err := c.u16()
			if err != nil {
				return err
			}
			if int(count)*16 > c.remaining() {
				return fmt.Errorf("wire: trace hop count %d outruns the %d body bytes: %w", count, c.remaining(), ErrMalformed)
			}
			// A fresh slice per traced frame: traces are sampled (rare) and
			// their hop lists are retained by the tracer.
			if count > 0 {
				f.Hops = make([]obs.Hop, 0, count)
			}
			for i := 0; i < int(count); i++ {
				node, err := c.u64()
				if err != nil {
					return err
				}
				at, err := c.u64()
				if err != nil {
					return err
				}
				f.Hops = append(f.Hops, obs.Hop{Node: repository.ID(int64(node)), At: int64(at)})
			}
		}
	case KindBatch:
		count, err := c.u32()
		if err != nil {
			return err
		}
		// Every entry is at least 10 bytes (empty item + value), so the
		// count is provably a lie if it outruns the bytes present —
		// checked before Ups grows toward it.
		if int64(count)*10 > int64(c.remaining()) {
			return fmt.Errorf("wire: batch count %d outruns the %d body bytes: %w", count, c.remaining(), ErrMalformed)
		}
		// The batch loop is the wire's hottest path — the fan-in side of
		// every parent push — so it walks the body with direct index
		// arithmetic rather than per-field cursor calls.
		b, off := c.b, c.off
		for i := 0; i < int(count); i++ {
			if len(b)-off < 2 {
				return c.short(2)
			}
			sl := int(binary.LittleEndian.Uint16(b[off:]))
			off += 2
			if len(b)-off < sl+8 {
				c.off = off
				return c.short(sl + 8)
			}
			item := d.intern(b[off : off+sl])
			off += sl
			v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
			f.Ups = append(f.Ups, Update{Item: item, Value: v})
		}
		c.off = off
	case KindSubscribe:
		raw, err := c.str()
		if err != nil {
			return err
		}
		f.Name = string(raw)
		count, err := c.u32()
		if err != nil {
			return err
		}
		if int64(count)*10 > int64(c.remaining()) {
			return fmt.Errorf("wire: subscribe count %d outruns the %d body bytes: %w", count, c.remaining(), ErrMalformed)
		}
		// Fresh map every time: the session registry retains it.
		f.Wants = make(map[string]coherency.Requirement, count)
		prev := ""
		for i := 0; i < int(count); i++ {
			raw, err := c.str()
			if err != nil {
				return err
			}
			item := string(raw)
			if i > 0 && item <= prev {
				return fmt.Errorf("wire: subscribe entries out of order (%q after %q): %w", item, prev, ErrMalformed)
			}
			prev = item
			tol, err := c.f64()
			if err != nil {
				return err
			}
			f.Wants[item] = coherency.Requirement(tol)
		}
		if queried {
			raw, err := c.str()
			if err != nil {
				return err
			}
			if len(raw) == 0 {
				// Canonical form: an empty spec encodes as no flag at all.
				return fmt.Errorf("wire: query flag with empty spec: %w", ErrMalformed)
			}
			f.Query = string(raw)
		}
	case KindAccept:
		// Empty body.
	case KindRedirect:
		count, err := c.u16()
		if err != nil {
			return err
		}
		if int(count)*2 > c.remaining() {
			return fmt.Errorf("wire: redirect count %d outruns the %d body bytes: %w", count, c.remaining(), ErrMalformed)
		}
		if count > 0 {
			f.Addrs = make([]string, 0, count)
		}
		for i := 0; i < int(count); i++ {
			raw, err := c.str()
			if err != nil {
				return err
			}
			f.Addrs = append(f.Addrs, string(raw))
		}
	}
	if c.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after %v body: %w", c.remaining(), kind, ErrMalformed)
	}
	return nil
}

// readBody fills d.body with exactly n body bytes. The buffer grows in
// readChunk steps as bytes actually arrive, so a stream that lies about
// its length allocates at most ~2× the bytes it really sent, not the
// declared size.
func (d *Decoder) readBody(n int) error {
	if cap(d.body) >= n {
		d.body = d.body[:n]
		if _, err := io.ReadFull(d.r, d.body); err != nil {
			return truncated(err)
		}
		return nil
	}
	d.body = d.body[:0]
	got := 0
	for got < n {
		chunk := n - got
		if chunk > readChunk {
			chunk = readChunk
		}
		if cap(d.body) < got+chunk {
			grown := make([]byte, got+chunk, 2*(got+chunk))
			copy(grown, d.body[:got])
			d.body = grown
		}
		d.body = d.body[:got+chunk]
		if _, err := io.ReadFull(d.r, d.body[got:]); err != nil {
			return truncated(err)
		}
		got += chunk
	}
	return nil
}

// truncated maps a clean EOF inside a promised body to ErrUnexpectedEOF:
// the header announced bytes that never came.
func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// intern returns a stable string for the item bytes. On a hit the
// string(b) comparison does not allocate (the compiler elides the
// conversion), so a connection's steady-state item universe decodes
// with zero allocations; a miss allocates the one string the caller
// needed anyway.
func (d *Decoder) intern(b []byte) string {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	slot := &d.items[h&(maxInterned-1)]
	if *slot == string(b) {
		return *slot
	}
	s := string(b)
	*slot = s
	return s
}

// cursor walks a frame body with bounds-checked field reads.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

// take's error path lives in a separate cold function so take (and the
// field readers built on it) stay under the inlining budget — the
// per-field call overhead is what the batch decode loop spends its time
// on otherwise.
func (c *cursor) take(n int) ([]byte, error) {
	if n > c.remaining() {
		return nil, c.short(n)
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s, nil
}

func (c *cursor) short(n int) error {
	return fmt.Errorf("wire: field of %d bytes, %d left in body: %w", n, c.remaining(), ErrMalformed)
}

func (c *cursor) u16() (uint16, error) {
	s, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(s), nil
}

func (c *cursor) u32() (uint32, error) {
	s, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(s), nil
}

func (c *cursor) u64() (uint64, error) {
	s, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(s), nil
}

func (c *cursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

// str reads a length-prefixed string field and returns the raw bytes,
// aliasing the decoder's body buffer — callers copy (or intern) before
// the next Decode.
func (c *cursor) str() ([]byte, error) {
	n, err := c.u16()
	if err != nil {
		return nil, err
	}
	return c.take(int(n))
}
