//go:build race

package wire

// raceEnabled gates allocation assertions: the race detector makes
// sync.Pool randomly drop items (its poolRaceHack), so pooled-buffer
// alloc-free invariants cannot hold under -race.
const raceEnabled = true
