package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strconv"
	"testing"

	"d3t/internal/coherency"
)

// header hand-builds an 8-byte frame header for malformed-input tests.
func header(n uint32, version, kind, flags, reserved byte) []byte {
	h := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(h, n)
	h[4], h[5], h[6], h[7] = version, kind, flags, reserved
	return h
}

func decodeBytes(b []byte) (Frame, error) {
	var f Frame
	err := NewDecoder(bytes.NewReader(b)).Decode(&f)
	return f, err
}

func TestDecodeCleanEOF(t *testing.T) {
	if _, err := decodeBytes(nil); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestDecodeTruncatedHeader(t *testing.T) {
	if _, err := decodeBytes([]byte{1, 2, 3}); err != io.ErrUnexpectedEOF {
		t.Fatalf("3-byte stream: %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestDecodeTruncatedBody(t *testing.T) {
	b := append(header(100, Version, byte(KindUpdate), 0, 0), make([]byte, 10)...)
	if _, err := decodeBytes(b); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated body: %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestDecodeOversizedPrefix is the hard cap: a length prefix over
// MaxFrameBytes must be rejected up front — before any body allocation
// or read — so a hostile 4 GiB announcement costs nothing.
func TestDecodeOversizedPrefix(t *testing.T) {
	b := header(0xffffffff, Version, byte(KindBatch), 0, 0)
	if _, err := decodeBytes(b); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized prefix: %v, want ErrFrameTooLarge", err)
	}
	// Just over the cap trips too; the cap itself is the last legal size.
	b = header(MaxFrameBytes+1, Version, byte(KindBatch), 0, 0)
	if _, err := decodeBytes(b); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("cap+1 prefix: %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	for _, k := range []byte{0, byte(kindMax) + 1, 0x7f} {
		b := header(0, Version, k, 0, 0)
		if _, err := decodeBytes(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("kind %d: %v, want ErrMalformed", k, err)
		}
	}
}

func TestDecodeUndefinedFlagBits(t *testing.T) {
	b := header(0, Version, byte(KindAccept), 0x02, 0)
	if _, err := decodeBytes(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("flag bit 1: %v, want ErrMalformed", err)
	}
}

func TestDecodeResyncOnWrongKind(t *testing.T) {
	for _, k := range []Kind{KindSubscribe, KindAccept, KindRedirect, KindBatch} {
		b := header(0, Version, byte(k), flagResync, 0)
		if _, err := decodeBytes(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("resync on %v: %v, want ErrMalformed", k, err)
		}
	}
}

func TestDecodeReservedByte(t *testing.T) {
	b := header(0, Version, byte(KindAccept), 0, 1)
	if _, err := decodeBytes(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("reserved byte: %v, want ErrMalformed", err)
	}
}

func TestDecodeTrailingBodyBytes(t *testing.T) {
	b := append(header(1, Version, byte(KindAccept), 0, 0), 0x00)
	if _, err := decodeBytes(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing byte: %v, want ErrMalformed", err)
	}
}

// TestDecodeCountLies: an entry count that outruns the body's bytes is
// rejected before any slice or map is sized from it — the declared
// count can never drive an allocation the received bytes don't back.
func TestDecodeCountLies(t *testing.T) {
	batch := header(4, Version, byte(KindBatch), 0, 0)
	batch = append(batch, 0xff, 0xff, 0xff, 0x7f) // count 2^31-1, empty body
	if _, err := decodeBytes(batch); !errors.Is(err, ErrMalformed) {
		t.Fatalf("batch count lie: %v, want ErrMalformed", err)
	}

	sub := header(8, Version, byte(KindSubscribe), 0, 0)
	sub = append(sub, 0, 0)                   // empty name
	sub = append(sub, 0xff, 0xff, 0xff, 0x7f) // wants count 2^31-1
	sub = append(sub, 0, 0)                   // two stray bytes
	if _, err := decodeBytes(sub); !errors.Is(err, ErrMalformed) {
		t.Fatalf("subscribe count lie: %v, want ErrMalformed", err)
	}

	redir := header(2, Version, byte(KindRedirect), 0, 0)
	redir = append(redir, 0xff, 0xff) // count 65535, empty body
	if _, err := decodeBytes(redir); !errors.Is(err, ErrMalformed) {
		t.Fatalf("redirect count lie: %v, want ErrMalformed", err)
	}
}

func TestDecodeSubscribeOutOfOrder(t *testing.T) {
	// Hand-build a subscribe with entries ("b", "a"): decodable field by
	// field but non-canonical, so the strict decoder must reject it.
	body := []byte{1, 0, 'n'}                        // name "n"
	body = binary.LittleEndian.AppendUint32(body, 2) // count
	body = append(body, 1, 0, 'b', 0, 0, 0, 0, 0, 0, 0, 0)
	body = append(body, 1, 0, 'a', 0, 0, 0, 0, 0, 0, 0, 0)
	b := append(header(uint32(len(body)), Version, byte(KindSubscribe), 0, 0), body...)
	if _, err := decodeBytes(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("out-of-order subscribe: %v, want ErrMalformed", err)
	}
	// Duplicate entries are out of order by definition (not strictly
	// increasing) and rejected the same way.
	body = []byte{1, 0, 'n'}
	body = binary.LittleEndian.AppendUint32(body, 2)
	body = append(body, 1, 0, 'a', 0, 0, 0, 0, 0, 0, 0, 0)
	body = append(body, 1, 0, 'a', 0, 0, 0, 0, 0, 0, 0, 0)
	b = append(header(uint32(len(body)), Version, byte(KindSubscribe), 0, 0), body...)
	if _, err := decodeBytes(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("duplicate subscribe entry: %v, want ErrMalformed", err)
	}
}

func TestEncodeRejectsInvalidFrames(t *testing.T) {
	big := string(make([]byte, 1<<17))
	cases := []Frame{
		{Kind: KindBatch, Resync: true},
		{Kind: KindAccept, Resync: true},
		{Kind: Kind(99)},
		{Kind: KindUpdate, Item: big},
		{Kind: KindSubscribe, Name: big},
		{Kind: KindRedirect, Addrs: []string{big}},
	}
	for i, f := range cases {
		if _, err := AppendFrame(nil, &f); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: %v, want ErrMalformed", i, err)
		}
	}
}

// TestDecoderStream drives several frames through one decoder — the
// long-lived-connection shape — checking that per-frame state fully
// resets and the reused Ups buffer never leaks entries across frames.
func TestDecoderStream(t *testing.T) {
	frames := []Frame{
		{Kind: KindSubscribe, Name: "s", Wants: map[string]coherency.Requirement{"X": 1}},
		{Kind: KindBatch, Ups: []Update{{Item: "X", Value: 1}, {Item: "Y", Value: 2}}},
		{Kind: KindUpdate, Item: "X", Value: 3, Resync: true},
		{Kind: KindBatch, Ups: []Update{{Item: "Y", Value: 4}}},
		{Kind: KindAccept},
	}
	var buf []byte
	var err error
	for i := range frames {
		if buf, err = AppendFrame(buf, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(bytes.NewReader(buf))
	var f Frame
	for i := range frames {
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !frameEqual(&f, &frames[i]) {
			t.Fatalf("frame %d decoded to %+v, want %+v", i, f, frames[i])
		}
	}
	if err := dec.Decode(&f); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestInternBounded churns more distinct item names through one decoder
// than the direct-mapped intern cache holds: every lookup must still
// return the right string (collisions overwrite, they never alias), and
// the cache is bounded by construction — a hostile peer cycling names
// costs overwrites, not memory.
func TestInternBounded(t *testing.T) {
	dec := NewDecoder(nil)
	for i := 0; i < 3*maxInterned; i++ {
		name := "item-" + strconv.Itoa(i)
		if got := dec.intern([]byte(name)); got != name {
			t.Fatalf("intern(%q) = %q", name, got)
		}
	}
	// Re-interning after the churn still yields correct strings.
	for _, name := range []string{"item-0", "item-12287", "fresh"} {
		if got := dec.intern([]byte(name)); got != name {
			t.Fatalf("post-churn intern(%q) = %q", name, got)
		}
	}
}

// TestDecodeLyingPrefixBoundedAlloc feeds a header announcing the full
// 16 MiB cap followed by a trickle of real bytes: the incremental body
// reader must not allocate anywhere near the announced size before the
// stream runs dry.
func TestDecodeLyingPrefixBoundedAlloc(t *testing.T) {
	b := append(header(MaxFrameBytes, Version, byte(KindBatch), 0, 0), make([]byte, 100)...)
	d := NewDecoder(bytes.NewReader(b))
	var f Frame
	if err := d.Decode(&f); err != io.ErrUnexpectedEOF {
		t.Fatalf("lying prefix: %v, want io.ErrUnexpectedEOF", err)
	}
	if cap(d.body) > 4*readChunk {
		t.Fatalf("body buffer grew to %d bytes on a 100-byte stream", cap(d.body))
	}
}
