package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// gobFrame mirrors Frame field for field: the exact struct netio
// shipped over gob before this codec existed, kept here (test-only) as
// the baseline the ≥5× acceptance bar is measured against.
type gobFrame struct {
	Kind   uint8
	From   repository.ID
	Item   string
	Value  float64
	Resync bool
	Name   string
	Wants  map[string]coherency.Requirement
	Addrs  []string
	Ups    []Update
}

func benchUpdate() *Frame { return &Frame{Kind: KindUpdate, Item: "AAPL", Value: 142.25} }

func benchBatch(n int) *Frame {
	f := &Frame{Kind: KindBatch}
	for i := 0; i < n; i++ {
		f.Ups = append(f.Ups, Update{Item: fmt.Sprintf("item-%02d", i%8), Value: 100 + float64(i)})
	}
	return f
}

func toGob(f *Frame) *gobFrame {
	return &gobFrame{Kind: uint8(f.Kind), Item: f.Item, Value: f.Value, Ups: f.Ups}
}

// BenchmarkFrameEncode measures the per-frame cost of the hot-path wire
// encode: single update and 64-update batch frames into io.Discard.
func BenchmarkFrameEncode(b *testing.B) {
	for _, tc := range []struct {
		name string
		f    *Frame
	}{
		{"update", benchUpdate()},
		{"batch64", benchBatch(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			enc := NewEncoder(io.Discard)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := enc.Encode(tc.f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGobFrameEncode is the encoding/gob baseline for the same
// frames — the codec netio used before internal/wire. The type
// definition is sent once up front, so this measures gob's generous
// steady state (per-frame reflection, no setup cost).
func BenchmarkGobFrameEncode(b *testing.B) {
	for _, tc := range []struct {
		name string
		f    *Frame
	}{
		{"update", benchUpdate()},
		{"batch64", benchBatch(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			enc := gob.NewEncoder(io.Discard)
			gf := toGob(tc.f)
			if err := enc.Encode(gf); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := enc.Encode(gf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchChunk frames are pre-encoded per decode benchmark chunk; the
// reader rewinds when drained.
const benchChunk = 1024

// BenchmarkFrameDecode measures hot-path wire decode: the pre-encoded
// chunk replays through one decoder, so item interning and buffer reuse
// are in steady state — as on a long-lived connection.
func BenchmarkFrameDecode(b *testing.B) {
	for _, tc := range []struct {
		name string
		f    *Frame
	}{
		{"update", benchUpdate()},
		{"batch64", benchBatch(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var buf []byte
			var err error
			for i := 0; i < benchChunk; i++ {
				if buf, err = AppendFrame(buf, tc.f); err != nil {
					b.Fatal(err)
				}
			}
			r := bytes.NewReader(buf)
			dec := NewDecoder(r)
			var f Frame
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r.Len() == 0 {
					r.Reset(buf)
				}
				if err := dec.Decode(&f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGobFrameDecode is the gob decode baseline. A gob stream
// cannot be rewound past its type definitions, so the decoder is
// rebuilt per drained chunk; amortized over benchChunk frames that
// setup cost is noise next to gob's per-frame reflection.
func BenchmarkGobFrameDecode(b *testing.B) {
	for _, tc := range []struct {
		name string
		f    *Frame
	}{
		{"update", benchUpdate()},
		{"batch64", benchBatch(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			gf := toGob(tc.f)
			for i := 0; i < benchChunk; i++ {
				if err := enc.Encode(gf); err != nil {
					b.Fatal(err)
				}
			}
			stream := buf.Bytes()
			r := bytes.NewReader(stream)
			dec := gob.NewDecoder(r)
			var f gobFrame
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r.Len() == 0 {
					r.Reset(stream)
					dec = gob.NewDecoder(r)
				}
				if err := dec.Decode(&f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEncodeAllocFree enforces the pooled-buffer invariant as a
// regression test, in the style of the node core's TestFanoutAllocFree:
// steady-state encoding of update and batch frames — the per-update
// wire hot path — allocates zero objects per frame.
func TestEncodeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	enc := NewEncoder(io.Discard)
	upd := benchUpdate()
	batch := benchBatch(64)
	// Warm-up: pool populated, buffer grown to batch size.
	if err := enc.Encode(batch); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		upd.Value = 100 + float64(i%3)
		if enc.Encode(upd) != nil || enc.Encode(batch) != nil {
			t.Fatal("encode failed")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Encode allocates %.1f objects per frame pair, want 0", allocs)
	}
}

// TestDecodeSteadyStateAllocFree pins the decode half: once a
// connection's item universe is interned and its buffers are grown, a
// single-update frame decodes with zero allocations (the wire really is
// zero-copy past the one socket read).
func TestDecodeSteadyStateAllocFree(t *testing.T) {
	b, err := AppendFrame(nil, benchUpdate())
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(b)
	dec := NewDecoder(r)
	var f Frame
	if err := dec.Decode(&f); err != nil { // warm-up: intern + body buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(b)
		if err := dec.Decode(&f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decode allocates %.1f objects per frame, want 0", allocs)
	}
}
