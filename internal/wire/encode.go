package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Encoder serializes frames onto w: one pooled buffer and one Write per
// frame, so TCP socket buffers apply backpressure exactly as they did
// under gob but without reflection or per-field allocations.
type Encoder struct {
	w io.Writer
}

// NewEncoder returns an encoder writing frames to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// encBuf wraps the pooled append buffer; the pointer indirection keeps
// Pool.Get/Put free of interface-conversion allocations.
type encBuf struct{ b []byte }

var encPool = sync.Pool{New: func() any { return &encBuf{b: make([]byte, 0, 512)} }}

// maxPooledBuf bounds what a drained encode returns to the pool, so one
// huge batch frame does not pin megabytes for the process lifetime.
const maxPooledBuf = 64 << 10

// Encode writes f as one frame. Buffers come from a pool shared across
// encoders, so steady-state encoding of update and batch frames
// allocates nothing (TestEncodeAllocFree enforces it).
func (e *Encoder) Encode(f *Frame) error {
	eb := encPool.Get().(*encBuf)
	b, err := AppendFrame(eb.b[:0], f)
	if err == nil {
		_, err = e.w.Write(b)
	}
	if cap(b) <= maxPooledBuf {
		eb.b = b
		encPool.Put(eb)
	}
	return err
}

// AppendFrame appends f's canonical serialization — header and body —
// to b and returns the extended slice.
func AppendFrame(b []byte, f *Frame) ([]byte, error) {
	var flags byte
	if f.Resync {
		if f.Kind != KindHello && f.Kind != KindUpdate {
			return b, fmt.Errorf("wire: resync flag on a %v frame: %w", f.Kind, ErrMalformed)
		}
		flags = flagResync
	}
	if f.TraceID != 0 {
		if f.Kind != KindUpdate || f.Resync {
			return b, fmt.Errorf("wire: trace on a %s%v frame: %w", resyncPrefix(f.Resync), f.Kind, ErrMalformed)
		}
		if len(f.Hops) > math.MaxUint16 {
			return b, fmt.Errorf("wire: %d trace hops exceed the uint16 count field: %w", len(f.Hops), ErrMalformed)
		}
		flags |= flagTrace
	} else if len(f.Hops) != 0 {
		return b, fmt.Errorf("wire: trace hops without a trace id: %w", ErrMalformed)
	}
	if f.Query != "" {
		if f.Kind != KindSubscribe {
			return b, fmt.Errorf("wire: query spec on a %v frame: %w", f.Kind, ErrMalformed)
		}
		flags |= flagQuery
	}
	start := len(b)
	b = append(b, 0, 0, 0, 0, Version, byte(f.Kind), flags, 0)
	var err error
	switch f.Kind {
	case KindHello:
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(f.From)))
	case KindUpdate:
		if b, err = appendString(b, f.Item); err != nil {
			return b, err
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Value))
		if f.TraceID != 0 {
			b = binary.LittleEndian.AppendUint64(b, f.TraceID)
			b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Hops)))
			for i := range f.Hops {
				b = binary.LittleEndian.AppendUint64(b, uint64(int64(f.Hops[i].Node)))
				b = binary.LittleEndian.AppendUint64(b, uint64(f.Hops[i].At))
			}
		}
	case KindBatch:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Ups)))
		for i := range f.Ups {
			if b, err = appendString(b, f.Ups[i].Item); err != nil {
				return b, err
			}
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Ups[i].Value))
		}
	case KindSubscribe:
		if b, err = appendString(b, f.Name); err != nil {
			return b, err
		}
		// Canonical order: strictly increasing item names. Sorting
		// allocates, but subscribe is a once-per-session handshake, not
		// the push hot path.
		items := make([]string, 0, len(f.Wants))
		for item := range f.Wants {
			items = append(items, item)
		}
		sort.Strings(items)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(items)))
		for _, item := range items {
			if b, err = appendString(b, item); err != nil {
				return b, err
			}
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(float64(f.Wants[item])))
		}
		if f.Query != "" {
			if b, err = appendString(b, f.Query); err != nil {
				return b, err
			}
		}
	case KindAccept:
		// Empty body.
	case KindRedirect:
		if len(f.Addrs) > math.MaxUint16 {
			return b, fmt.Errorf("wire: %d redirect addresses exceed the uint16 count field: %w", len(f.Addrs), ErrMalformed)
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Addrs)))
		for _, a := range f.Addrs {
			if b, err = appendString(b, a); err != nil {
				return b, err
			}
		}
	default:
		return b, fmt.Errorf("wire: cannot encode frame kind %d: %w", uint8(f.Kind), ErrMalformed)
	}
	n := len(b) - start - headerSize
	if n > MaxFrameBytes {
		return b, fmt.Errorf("wire: %v body is %d bytes, cap %d: %w", f.Kind, n, MaxFrameBytes, ErrFrameTooLarge)
	}
	binary.LittleEndian.PutUint32(b[start:start+4], uint32(n))
	return b, nil
}

// resyncPrefix labels a frame kind in trace-misuse errors.
func resyncPrefix(resync bool) string {
	if resync {
		return "resync "
	}
	return ""
}

// appendString appends the uint16 length prefix and bytes of s.
func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return b, fmt.Errorf("wire: %d-byte string exceeds the 64 KiB field cap: %w", len(s), ErrMalformed)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}
