package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"d3t/internal/coherency"
)

// TestQueryFlagPlainUnchanged pins the compat half of the flag-gated
// extension rule for the query trailer: a plain subscribe must encode to
// exactly the bytes it produced before the query feature existed, so
// pre-query and post-query peers interoperate as long as no session
// subscribes to a derived value.
func TestQueryFlagPlainUnchanged(t *testing.T) {
	plain := Frame{Kind: KindSubscribe, Name: "alice", Wants: map[string]coherency.Requirement{
		"AAPL": 0.5,
		"MSFT": 2,
	}}
	b, err := AppendFrame(nil, &plain)
	if err != nil {
		t.Fatal(err)
	}
	if b[6] != 0 {
		t.Fatalf("plain subscribe carries flags %#x", b[6])
	}
	queried := plain
	queried.Query = "diff(AAPL,MSFT)@0.1"
	qb, err := AppendFrame(nil, &queried)
	if err != nil {
		t.Fatal(err)
	}
	if qb[6]&flagQuery == 0 {
		t.Fatalf("query subscribe lost its flag: %#x", qb[6])
	}
	// Body prefix (name + wants) is identical; only the spec trailer
	// differs.
	if !bytes.Equal(qb[8:8+len(b)-8], b[8:]) {
		t.Fatalf("query trailer changed the subscribe body prefix\nplain:   %x\nqueried: %x", b, qb)
	}
}

// TestQueryFlagRejections pins every malformed combination around the
// query flag: flag and trailer are an all-or-nothing pair, on subscribe
// frames only.
func TestQueryFlagRejections(t *testing.T) {
	// Encoding: a query spec on a kind that cannot carry it.
	for _, f := range []Frame{
		{Kind: KindUpdate, Item: "X", Value: 1, Query: "avg(X)@1"},
		{Kind: KindHello, From: 3, Query: "avg(X)@1"},
		{Kind: KindBatch, Ups: []Update{{Item: "X", Value: 1}}, Query: "avg(X)@1"},
	} {
		if _, err := AppendFrame(nil, &f); !errors.Is(err, ErrMalformed) {
			t.Errorf("encode %+v: err=%v, want ErrMalformed", f, err)
		}
	}

	decode := func(b []byte) error {
		var f Frame
		return NewDecoder(bytes.NewReader(b)).Decode(&f)
	}
	sub, err := AppendFrame(nil, &Frame{Kind: KindSubscribe, Name: "a",
		Wants: map[string]coherency.Requirement{"X": 1}})
	if err != nil {
		t.Fatal(err)
	}

	// Query flag on a kind that cannot carry it.
	hello, err := AppendFrame(nil, &Frame{Kind: KindHello, From: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), hello...)
	bad[6] |= flagQuery
	if err := decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("query flag on hello: err=%v, want ErrMalformed", err)
	}

	// Flag set with no spec trailer: the body ends at the wants list.
	bad = append([]byte(nil), sub...)
	bad[6] |= flagQuery
	if err := decode(bad); err == nil {
		t.Errorf("query flag without a spec decoded cleanly")
	}

	// Flag set with an empty spec string (non-canonical).
	bad = append([]byte(nil), sub...)
	bad[6] |= flagQuery
	bad = append(bad, 0, 0) // zero-length string
	binary.LittleEndian.PutUint32(bad[0:4], uint32(len(bad)-8))
	if err := decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("query flag with empty spec: err=%v, want ErrMalformed", err)
	}

	// A spec trailer without the flag: trailing body bytes.
	bad = append([]byte(nil), sub...)
	bad = append(bad, 1, 0, 'x') // one-byte string, flag clear
	binary.LittleEndian.PutUint32(bad[0:4], uint32(len(bad)-8))
	if err := decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("spec trailer without the flag: err=%v, want ErrMalformed", err)
	}
}
