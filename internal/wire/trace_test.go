package wire

import (
	"bytes"
	"errors"
	"testing"

	"d3t/internal/obs"
)

// TestTraceFlagRoundTrip exercises the flag-gated trace trailer: a
// traced update survives encode→decode with id and hop stamps intact,
// growing by one hop per simulated forwarding node, exactly as the
// netio path relays it.
func TestTraceFlagRoundTrip(t *testing.T) {
	f := Frame{Kind: KindUpdate, Item: "AAPL", Value: 142.25, TraceID: 31, Hops: []obs.Hop{
		{Node: 0, At: 100},
	}}
	for hop := 1; hop <= 4; hop++ {
		b, err := AppendFrame(nil, &f)
		if err != nil {
			t.Fatalf("hop %d encode: %v", hop, err)
		}
		var dec Frame
		if err := NewDecoder(bytes.NewReader(b)).Decode(&dec); err != nil {
			t.Fatalf("hop %d decode: %v", hop, err)
		}
		if !frameEqual(&f, &dec) {
			t.Fatalf("hop %d: decoded %+v, want %+v", hop, dec, f)
		}
		// The receiving node appends its stamp and forwards.
		dec.Hops = append(dec.Hops, obs.Hop{Node: 2, At: dec.Hops[len(dec.Hops)-1].At + 50})
		f = dec
	}
	if len(f.Hops) != 5 {
		t.Fatalf("trace did not accumulate hops: %+v", f.Hops)
	}
	for i := 1; i < len(f.Hops); i++ {
		if f.Hops[i].At < f.Hops[i-1].At {
			t.Fatalf("non-monotone hop stamps: %+v", f.Hops)
		}
	}
}

// TestTraceFlagUntracedUnchanged pins the compat half of the flag-gated
// extension rule: an untraced update must encode to exactly the bytes
// it produced before the trace feature existed (the committed golden
// vector), so pre-trace and post-trace peers interoperate as long as
// tracing stays off.
func TestTraceFlagUntracedUnchanged(t *testing.T) {
	plain := Frame{Kind: KindUpdate, Item: "AAPL", Value: 142.25}
	b, err := AppendFrame(nil, &plain)
	if err != nil {
		t.Fatal(err)
	}
	if b[6] != 0 {
		t.Fatalf("untraced update carries flags %#x", b[6])
	}
	traced := plain
	traced.TraceID = 1
	tb, err := AppendFrame(nil, &traced)
	if err != nil {
		t.Fatal(err)
	}
	if tb[6]&flagTrace == 0 {
		t.Fatalf("traced update lost its flag: %#x", tb[6])
	}
	// Body prefix (item + value) is identical; only the trailer differs.
	if !bytes.Equal(tb[8:8+len(b)-8], b[8:]) {
		t.Fatalf("trace trailer changed the update body prefix\nplain:  %x\ntraced: %x", b, tb)
	}
}

// TestTraceFlagRejections pins every malformed combination around the
// trace flag.
func TestTraceFlagRejections(t *testing.T) {
	// Encoding: trace on a non-update, on a resync update, hops without
	// an id.
	for _, f := range []Frame{
		{Kind: KindBatch, TraceID: 5, Ups: []Update{{Item: "X", Value: 1}}},
		{Kind: KindHello, From: 3, TraceID: 5},
		{Kind: KindUpdate, Item: "X", Value: 1, Resync: true, TraceID: 5},
		{Kind: KindUpdate, Item: "X", Value: 1, Hops: []obs.Hop{{Node: 1, At: 2}}},
	} {
		if _, err := AppendFrame(nil, &f); !errors.Is(err, ErrMalformed) {
			t.Errorf("encode %+v: err=%v, want ErrMalformed", f, err)
		}
	}

	good, err := AppendFrame(nil, &Frame{Kind: KindUpdate, Item: "X", Value: 1, TraceID: 7, Hops: []obs.Hop{{Node: 0, At: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	decode := func(b []byte) error {
		var f Frame
		return NewDecoder(bytes.NewReader(b)).Decode(&f)
	}

	// Trace flag on a kind that cannot carry it.
	hello, err := AppendFrame(nil, &Frame{Kind: KindHello, From: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), hello...)
	bad[6] |= flagTrace
	if err := decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("trace flag on hello: err=%v, want ErrMalformed", err)
	}

	// Trace + resync on an update.
	bad = append([]byte(nil), good...)
	bad[6] |= flagResync
	if err := decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("trace+resync update: err=%v, want ErrMalformed", err)
	}

	// Zero trace id under the flag (non-canonical).
	bad = append([]byte(nil), good...)
	for i := 0; i < 8; i++ {
		bad[8+2+1+8+i] = 0 // body: item len(2) + "X"(1) + value(8), then the id
	}
	if err := decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("zero trace id: err=%v, want ErrMalformed", err)
	}

	// Hop count outrunning the body.
	bad = append([]byte(nil), good...)
	bad[8+2+1+8+8] = 0xff // hop count low byte
	if err := decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("hop count overrun: err=%v, want ErrMalformed", err)
	}

	// A truncated hop list (header promises more body than sent).
	bad = append([]byte(nil), good...)
	if err := decode(bad[:len(bad)-4]); err == nil {
		t.Errorf("truncated trace decoded cleanly")
	}
}
