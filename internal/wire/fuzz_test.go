package wire

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// FuzzDecodeFrame fuzzes the decoder with arbitrary byte streams — the
// exact threat model of a byte-level attacker on a netio listener. The
// decoder must never panic, must never build structures that outrun the
// bytes actually received (the over-allocation guard), and anything it
// accepts must re-encode canonically: encode(decode(b)) reproduces the
// consumed prefix of b byte for byte and decodes again to the same
// frame.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: every golden frame, plus targeted malformed inputs so
	// coverage starts at each rejection path.
	for _, g := range goldenFrames() {
		b, err := AppendFrame(nil, &g.f)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)-1])     // truncated body
		f.Add(b[:headerSize-2]) // truncated header
		bad := append([]byte(nil), b...)
		bad[4] = Version + 1 // wrong version
		f.Add(bad)
		bad = append([]byte(nil), b...)
		bad[5] = 0x7f // unknown kind
		f.Add(bad)
		bad = append([]byte(nil), b...)
		bad[6] = 0xff // undefined flags
		f.Add(bad)
		f.Add(append(append([]byte(nil), b...), b...)) // two frames back to back
	}
	f.Add(header(0xffffffff, Version, byte(KindBatch), 0, 0)) // lying length prefix
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		var fr Frame
		if err := dec.Decode(&fr); err != nil {
			return // rejected: the only other acceptable outcome
		}
		// Over-allocation guard: every decoded entry is backed by at
		// least its minimum wire size in actually-received bytes.
		if len(fr.Ups) > len(data)/10 || len(fr.Wants) > len(data)/10 || len(fr.Addrs) > len(data)/2 {
			t.Fatalf("decoded %d ups / %d wants / %d addrs from %d input bytes",
				len(fr.Ups), len(fr.Wants), len(fr.Addrs), len(data))
		}
		// Canonical re-encode: byte identity with the consumed prefix.
		out, err := AppendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("accepted frame %+v failed to re-encode: %v", fr, err)
		}
		if len(out) > len(data) || !bytes.Equal(out, data[:len(out)]) {
			t.Fatalf("re-encode diverged\n got: %x\nfrom: %x", out, data)
		}
		var again Frame
		if err := NewDecoder(bytes.NewReader(out)).Decode(&again); err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !frameEqual(&fr, &again) {
			t.Fatalf("re-decode drifted: %+v vs %+v", fr, again)
		}
	})
}

// FuzzRoundTrip fuzzes the codec from the frame side: any frame the
// encoder accepts must decode back bit-identically (NaN values and
// negative ids included) and re-encode to the same bytes — encode is
// injective and decode is its exact inverse on the valid domain.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(7), "AAPL", uint64(0), true, "alice", "10.0.0.2:7070", uint8(3))
	f.Add(uint8(1), int64(-1), "X", math.Float64bits(142.25), false, "", "", uint8(0))
	f.Add(uint8(2), int64(0), "item", math.Float64bits(0.5), false, "bob", "peer:1", uint8(7))
	f.Add(uint8(3), int64(1), "", uint64(0), false, "", "", uint8(0))
	f.Add(uint8(4), int64(2), "", uint64(0), false, "", "addr", uint8(4))
	f.Add(uint8(5), int64(3), "T", ^uint64(0), false, "", "", uint8(15)) // NaN batch
	f.Fuzz(func(t *testing.T, kindSel uint8, id int64, item string, bits uint64, resync bool, name, addr string, n uint8) {
		var fr Frame
		switch Kind(kindSel%uint8(kindMax)) + 1 {
		case KindHello:
			fr = Frame{Kind: KindHello, From: repository.ID(id), Resync: resync}
		case KindUpdate:
			fr = Frame{Kind: KindUpdate, Item: item, Value: math.Float64frombits(bits), Resync: resync}
		case KindSubscribe:
			wants := make(map[string]coherency.Requirement)
			for i := 0; i < int(n%8); i++ {
				wants[fmt.Sprintf("%s#%d", item, i)] = coherency.Requirement(math.Float64frombits(bits ^ uint64(i)))
			}
			fr = Frame{Kind: KindSubscribe, Name: name, Wants: wants}
		case KindAccept:
			fr = Frame{Kind: KindAccept}
		case KindRedirect:
			var addrs []string
			for i := 0; i < int(n%5); i++ {
				addrs = append(addrs, fmt.Sprintf("%s:%d", addr, i))
			}
			fr = Frame{Kind: KindRedirect, Addrs: addrs}
		case KindBatch:
			var ups []Update
			for i := 0; i < int(n%16); i++ {
				ups = append(ups, Update{Item: fmt.Sprintf("%s/%d", item, i), Value: math.Float64frombits(bits ^ uint64(i))})
			}
			fr = Frame{Kind: KindBatch, Ups: ups}
		}
		b, err := AppendFrame(nil, &fr)
		if err != nil {
			// The only legal refusal for generated frames is an oversized
			// string field.
			if len(item) < 60000 && len(name) < 60000 && len(addr) < 60000 {
				t.Fatalf("encoder refused %+v: %v", fr, err)
			}
			return
		}
		var got Frame
		if err := NewDecoder(bytes.NewReader(b)).Decode(&got); err != nil {
			t.Fatalf("round trip rejected: %v\nframe: %+v\nbytes: %x", err, fr, b)
		}
		if !frameEqual(&fr, &got) {
			t.Fatalf("round trip drifted:\nsent: %+v\n got: %+v", fr, got)
		}
		b2, err := AppendFrame(nil, &got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encoding not canonical:\nfirst:  %x\nsecond: %x", b, b2)
		}
	})
}
