//go:build !race

package wire

// raceEnabled gates allocation assertions; see race_on_test.go.
const raceEnabled = false
