// Package d3t is a reproduction of "Maintaining Coherency of Dynamic Data
// in Cooperating Repositories" (Shah, Ramamritham, Shenoy — VLDB 2002) as
// a reusable Go library.
//
// The paper's system disseminates rapidly changing data items (stock
// prices, sensor readings) from a source through an overlay of cooperating
// repositories — the dynamic data dissemination tree, d3t — such that each
// repository's copy stays within a per-item coherency tolerance c:
//
//	|source(t) - copy(t)| <= c    for all t
//
// The package exposes three layers:
//
//   - Experiments: RunExperiment executes a fully configured simulation
//     (network, overlay, dissemination, fidelity measurement); Figures
//     regenerates every table and figure of the paper's evaluation.
//   - Building blocks: traces (GenerateTraces), physical networks
//     (GenerateNetwork), overlay construction (NewLeLA and friends) and
//     dissemination protocols (NewDistributed, NewCentralized, RunPush,
//     RunPull, RunLease) for custom setups.
//   - Live runtimes: the live subpackage runs the same algorithms on
//     goroutines in real time, and netio serves them over TCP.
//   - Client serving: ClientFleet (and Config.Clients) attaches end-user
//     sessions with their own tolerances to repositories — load-aware
//     placement, per-client filtered fan-out, churn/migration, and
//     client-observed fidelity; live and netio serve sessions over
//     channels and TCP subscriptions.
//   - Sharded ingest: Config.Shards/Config.BatchTicks (and the
//     IngestPipeline building block) hash-partition independent items
//     across parallel workers and coalesce update bursts into batches —
//     the same partition drives the simulator, live's per-shard batch
//     channels, and netio's multi-update frames.
//   - Virtual serving: VirtualFleet (and Config.VirtualSessions) serves
//     sessions as compact per-shard array state instead of one object
//     each — millions of sessions in one process with the exact serving
//     semantics of ClientFleet (the two are parity-tested). Placement
//     goes through a shared nearest-k index with a consistent-hash
//     overflow ring, and Config.Scenario schedules flash crowds,
//     correlated regional failures and diurnal load waves over the
//     population.
//   - Durability: Config.Durability (and the WAL building blocks) backs
//     every repository with a per-shard write-ahead log plus periodic
//     snapshots, group-committed on batch boundaries. A killed
//     repository recovers its exact pre-crash values and edge filter
//     state from disk instead of rejoining cold — the first
//     post-recovery push is suppressed or forwarded as if the crash
//     never happened. All three runtimes honor it (kill: fault specs,
//     live NewDurableCluster, netio NodeConfig.Durability).
//   - Derived-data queries: Config.Queries (and the Query building
//     blocks) subscribe clients to *derived* values — windowed
//     aggregates, joins, filters — with a tolerance cQ on the result;
//     tolerance allocation translates cQ into per-input tolerances the
//     Eq. 3+7 machinery enforces, so coherent inputs provably imply a
//     coherent result. All three runtimes serve query sessions
//     (ClientFleet.AttachQueries, live SubscribeQuery, netio
//     SubscribeQuery).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package d3t

import (
	"d3t/internal/coherency"
	"d3t/internal/core"
	"d3t/internal/dissemination"
	"d3t/internal/ingest"
	"d3t/internal/netsim"
	"d3t/internal/node"
	"d3t/internal/place"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/resilience"
	"d3t/internal/serve"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
	"d3t/internal/vserve"
	"d3t/internal/wal"
)

// Experiment layer -----------------------------------------------------

type (
	// Config fully describes one simulation run.
	Config = core.Config
	// Outcome is the measured result of a run.
	Outcome = core.Outcome
	// Scale sizes a figure sweep (SmallScale or PaperScale).
	Scale = core.Scale
	// FigureResult is a regenerated table or figure.
	FigureResult = core.FigureResult
	// FigureFunc regenerates one table or figure.
	FigureFunc = core.FigureFunc
	// Series is one labelled curve in a FigureResult.
	Series = core.Series
)

// DefaultConfig returns the paper's base case at full scale.
func DefaultConfig() Config { return core.Default() }

// RunExperiment executes one end-to-end simulation.
func RunExperiment(cfg Config) (*Outcome, error) { return core.RunExperiment(cfg) }

// SmallScale is the fast sweep preset; PaperScale is the paper's.
func SmallScale() Scale { return core.SmallScale() }

// PaperScale reproduces the paper's evaluation scale (100 repositories,
// 700 network nodes, 100 traces of 10000 ticks).
func PaperScale() Scale { return core.PaperScale() }

// Figures returns the registry of reproducible tables and figures.
func Figures() map[string]FigureFunc { return core.Figures() }

// FigureIDs lists the registry keys in sorted order.
func FigureIDs() []string { return core.FigureIDs() }

// SweepRunner executes batches of configurations on a bounded worker
// pool, sharing cached networks and trace sets across sweep points.
// Results are index-ordered and independent of the worker count.
type SweepRunner = core.Runner

// SweepProgress is the per-point progress report of a SweepRunner.
type SweepProgress = core.Progress

// NewSweepRunner returns a runner bounded to the given worker count
// (<= 0 means GOMAXPROCS). Assign it to Scale.Runner to share caches
// across figures, or call RunAll directly with a batch of Configs.
func NewSweepRunner(workers int) *SweepRunner { return core.NewRunner(workers) }

// Building blocks -------------------------------------------------------

type (
	// Time is simulation time in microseconds.
	Time = sim.Time
	// Trace is one data item's update history.
	Trace = trace.Trace
	// Tick is a single trace observation.
	Tick = trace.Tick
	// TraceConfig parameterizes synthetic trace generation.
	TraceConfig = trace.GenConfig
	// Workload is a pluggable trace-set generator family.
	Workload = trace.Workload
	// WorkloadSpec sizes a workload generation request.
	WorkloadSpec = trace.WorkloadSpec
	// Network is the endpoint delay structure of a physical topology.
	Network = netsim.Network
	// NetworkConfig parameterizes random topology generation.
	NetworkConfig = netsim.Config
	// Repository is one overlay node.
	Repository = repository.Repository
	// RepositoryID identifies an overlay node (0 is the source).
	RepositoryID = repository.ID
	// Requirement is a coherency tolerance in value units.
	Requirement = coherency.Requirement
	// Client is an end user attached to a repository with per-item
	// tolerances (Section 1.2).
	Client = repository.Client
	// ClientWorkload parameterizes random client population generation.
	ClientWorkload = repository.ClientWorkload
	// Overlay is a constructed dissemination graph.
	Overlay = tree.Overlay
	// Builder constructs overlays.
	Builder = tree.Builder
	// LeLABuilder is the paper's Level-by-Level Algorithm with its
	// dynamic-membership operations (Insert, UpdateNeeds).
	LeLABuilder = tree.LeLA
	// Protocol is a push dissemination algorithm.
	Protocol = dissemination.Protocol
	// PushConfig is the delay model for push runs.
	PushConfig = dissemination.Config
	// PullConfig parameterizes pull-based runs.
	PullConfig = dissemination.PullConfig
	// LeaseConfig parameterizes lease-augmented push runs.
	LeaseConfig = dissemination.LeaseConfig
	// RunResult is the outcome of a protocol run over an overlay.
	RunResult = dissemination.Result
	// FidelityReport aggregates per-repository fidelity.
	FidelityReport = coherency.Report
)

// Time units re-exported for building schedules and delays.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Pull modes.
const (
	StaticTTR   = dissemination.StaticTTR
	AdaptiveTTR = dissemination.AdaptiveTTR
)

// SourceID is the overlay id of the data source.
const SourceID = repository.SourceID

// Milliseconds converts floating-point milliseconds to Time.
func Milliseconds(ms float64) Time { return sim.Milliseconds(ms) }

// GenerateTrace produces one synthetic trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// GenerateTraces produces n workload traces at the given tick count and
// interval (the paper's stock-price stand-ins).
func GenerateTraces(n, ticks int, interval Time, seed int64) []*Trace {
	return trace.GenerateSet(n, ticks, interval, seed)
}

// LookupWorkload resolves a registered workload family by name; the empty
// string selects "stocks".
func LookupWorkload(name string) (Workload, error) { return trace.LookupWorkload(name) }

// RegisterWorkload adds a custom workload family to the registry, making
// it selectable via Config.Workload and the cmd flags.
func RegisterWorkload(w Workload) { trace.RegisterWorkload(w) }

// WorkloadNames lists the registered workload families in sorted order.
func WorkloadNames() []string { return trace.WorkloadNames() }

// GenerateNetwork builds a random router topology with Pareto link delays.
func GenerateNetwork(cfg NetworkConfig) (*Network, error) { return netsim.Generate(cfg) }

// UniformNetwork builds a network where every endpoint pair is exactly
// delay apart.
func UniformNetwork(repositories int, delay Time) *Network {
	return netsim.Uniform(repositories, delay)
}

// NewRepository creates an overlay node with the given id and cooperation
// limit.
func NewRepository(id RepositoryID, coopLimit int) *Repository {
	return repository.New(id, coopLimit)
}

// NewLeLA returns the paper's Level-by-Level overlay builder. The
// concrete type also supports dynamic membership: Insert joins a new
// repository into a built overlay, UpdateNeeds reapplies the algorithm
// for changed coherency needs, and Overlay.Remove departs a leaf.
func NewLeLA(pPercent float64, seed int64) *LeLABuilder {
	return &tree.LeLA{PPercent: pPercent, Seed: seed}
}

// NewDistributed returns the repository-based dissemination algorithm
// (Eqs. 3 and 7).
func NewDistributed() Protocol { return dissemination.NewDistributed() }

// NewCentralized returns the source-based dissemination algorithm.
func NewCentralized() Protocol { return dissemination.NewCentralized() }

// RunPush pushes the traces through the overlay with the protocol.
func RunPush(o *Overlay, traces []*Trace, p Protocol, cfg PushConfig) (*RunResult, error) {
	return dissemination.Run(o, traces, p, cfg)
}

// RunPull refreshes the overlay by polling (static or adaptive TTR).
func RunPull(o *Overlay, traces []*Trace, cfg PullConfig) (*RunResult, error) {
	return dissemination.RunPull(o, traces, cfg)
}

// RunLease runs lease-augmented push.
func RunLease(o *Overlay, traces []*Trace, cfg LeaseConfig) (*RunResult, error) {
	return dissemination.RunLease(o, traces, cfg)
}

// ControlledCoopDegree computes the Eq. 2 "optimal" degree of cooperation.
func ControlledCoopDegree(avgComm, avgComp Time, resources, k int) int {
	return tree.ControlledCoopDegree(avgComm, avgComp, resources, k)
}

// Node core --------------------------------------------------------------

type (
	// NodeCore is the transport-agnostic repository state machine every
	// runtime shares: per-update receive/filter/forward decisions
	// (Eqs. 3 and 7) over precomputed dependent plans, last-pushed-value
	// tracking, session admission/redirect/resync, and failover resync.
	// The simulator, the goroutine cluster and the TCP cluster are thin
	// transports around it; custom runtimes can be too.
	NodeCore = node.Core
	// NodeTransport is the backend half of a node: the core decides,
	// the transport moves bytes and time.
	NodeTransport = node.Transport
	// NodeOptions configures a NodeCore (source semantics, session cap,
	// naive Eq.3-only ablation, serve-only mode).
	NodeOptions = node.Options
	// NodeSession is one client's subscription state as its serving
	// node core tracks it; it survives migration between cores.
	NodeSession = node.Session
	// NodeDecisions tallies a core's forward/suppress filter decisions
	// (the cross-backend parity instrumentation).
	NodeDecisions = node.Decisions
)

// NewNodeCore builds a repository core around the repository's wiring;
// peers resolves dependent ids to their repositories.
func NewNodeCore(self *Repository, peers func(RepositoryID) *Repository, opts NodeOptions) *NodeCore {
	return node.New(self, peers, opts)
}

// NewNodeSession builds a detached client session for admission into a
// NodeCore.
func NewNodeSession(name string, wants map[string]Requirement) *NodeSession {
	return node.NewSession(name, wants)
}

// Ingest layer -----------------------------------------------------------

type (
	// IngestConfig parameterizes the sharded batched ingest pipeline
	// (Config.Shards / Config.BatchTicks select it for experiments).
	IngestConfig = ingest.Config
	// IngestStats reports an ingest run's throughput and coalescing work
	// (Outcome.Ingest carries one for sharded/batched runs).
	IngestStats = ingest.Stats
	// IngestPipeline is the transport-free sharded ingest engine: items
	// hash-partition across shard workers, each draining its batches'
	// fan-out plans through its own set of repository cores at full
	// speed.
	IngestPipeline = ingest.Pipeline
)

// NewIngestPipeline builds and starts an ingest pipeline over a built
// overlay, seeded with the items' initial values.
func NewIngestPipeline(o *Overlay, initial map[string]float64, cfg IngestConfig) *IngestPipeline {
	return ingest.NewPipeline(o, initial, cfg)
}

// ShardOf maps an item to its ingest shard — the one hash every sharded
// layer (pipeline workers, the sharded simulator, live's per-shard
// channels) shares.
func ShardOf(item string, shards int) int { return ingest.ShardOf(item, shards) }

// CoalesceTraces folds each trace's updates through batch windows of
// batchTicks ticks (only the newest value per window survives; horizons
// are preserved), returning the coalesced set and the folded count.
func CoalesceTraces(traces []*Trace, batchTicks int) ([]*Trace, uint64) {
	return ingest.CoalesceTraces(traces, batchTicks)
}

// Resilience layer ------------------------------------------------------

type (
	// FaultPlan is a deterministic failure schedule (crashes, rejoins,
	// churn) injected into a resilient run.
	FaultPlan = resilience.Plan
	// Fault is one scheduled failure of a FaultPlan.
	Fault = resilience.Fault
	// ResilienceConfig parameterizes heartbeats, detection and repair.
	ResilienceConfig = resilience.Config
	// ResilienceStats counts crashes, detections, repairs and recovery
	// latency.
	ResilienceStats = resilience.Stats
	// ResilienceResult extends a push run result with resilience stats.
	ResilienceResult = resilience.Result
)

// ParseFaultPlan builds a failure schedule from a spec string such as
// "crash:max@50", "crash:3@50+100" or "churn:2:30", sized to a run of the
// given repositories/ticks. See resilience.ParsePlan for the grammar; the
// same spec is accepted by Config.Faults and the -faults command flags.
func ParseFaultPlan(spec string, repos, ticks int, interval Time, seed int64) (*FaultPlan, error) {
	return resilience.ParsePlan(spec, repos, ticks, interval, seed)
}

// RunResilient pushes the traces through the overlay under a fault plan:
// heartbeats between neighbors, silence-window failure detection, and
// backup-parent repair via the builder's re-homing machinery
// (LeLABuilder.BackupParents, Rehome, RemoveRepair). A nil plan runs
// fault-free.
func RunResilient(o *Overlay, lela *LeLABuilder, traces []*Trace, p Protocol,
	cfg ResilienceConfig, plan *FaultPlan) (*ResilienceResult, error) {
	return resilience.Run(o, lela, traces, p, cfg, plan)
}

// Durability layer -------------------------------------------------------

type (
	// DurabilityConfig selects per-repository durable state for
	// experiments (Config.Durability): each repository's values and edge
	// filter state ride a write-ahead log with periodic snapshots under
	// Dir, so kill: faults recover from disk instead of rejoining cold.
	DurabilityConfig = core.DurabilityConfig
	// WALOptions configures one write-ahead log directory; the live and
	// netio runtimes take one via Options.Durability and
	// NodeConfig.Durability.
	WALOptions = wal.Options
	// WALRecovered is what opening a log directory found on disk:
	// snapshot state, replayable batches, and any truncated torn tail.
	WALRecovered = wal.Recovered
	// WALLog is an open write-ahead log (group commit per batch).
	WALLog = wal.Log
)

// Fsync policies for WALOptions.Fsync.
const (
	WALFsyncBatch  = wal.PolicyBatch
	WALFsyncAlways = wal.PolicyAlways
	WALFsyncNever  = wal.PolicyNever
)

// OpenWAL recovers a log directory's state (truncating any torn tail)
// and opens the log for appending — the building block custom runtimes
// use directly.
func OpenWAL(dir string, opts WALOptions) (*WALLog, *WALRecovered, error) {
	return wal.Open(dir, opts)
}

// DeriveNeeds computes each repository's data and coherency needs from its
// client population: the union of its clients' items, each at the most
// stringent tolerance any client demands (Section 1.2).
func DeriveNeeds(repos []*Repository, clients []*Client) error {
	return repository.DeriveNeeds(repos, clients)
}

// GenerateClients builds a random client population for a workload.
func GenerateClients(w ClientWorkload) ([]*Client, error) {
	return repository.GenerateClients(w)
}

// Serving layer ---------------------------------------------------------

type (
	// ClientFleet is a population of client sessions served by the
	// repositories of one run: load-aware placement under a session cap,
	// per-client coherency-filtered fan-out (Eq. 3 at the leaf), churn
	// and crash-driven migration, and client-observed fidelity. It
	// implements the run observers, so assign it to PushConfig.Observer
	// (or ResilienceConfig.Observer) to serve a simulation's clients.
	ClientFleet = serve.Fleet
	// FleetOptions parameterizes a fleet (session cap, churn plan).
	FleetOptions = serve.Options
	// ClientStats is the serving layer's outcome: client-observed
	// fidelity, redirect/migration counters, fan-out work.
	ClientStats = serve.Stats
	// ClientSession is one client's live subscription.
	ClientSession = serve.Session
	// RunObserver receives a simulation's source ticks and deliveries
	// (PushConfig.Observer); ResilienceObserver additionally sees crashes
	// and rejoins (ResilienceConfig.Observer).
	RunObserver = dissemination.Observer
	// ResilienceObserver extends RunObserver with fault events.
	ResilienceObserver = resilience.Observer
)

// NewClientFleet builds an empty fleet over the repository population
// (ids 1..n, matching the network's endpoints). Attach the clients, seed
// the initial values once the overlay is built, run with the fleet as
// the observer, then Finalize.
func NewClientFleet(net *Network, repos []*Repository, opts FleetOptions) (*ClientFleet, error) {
	return serve.NewFleet(net, repos, opts)
}

// ParseSessionPlan builds a session churn plan (arrivals/departures over
// the session population) from a spec string such as "churn:5:40" or
// "crash:3@100+50", sized to `sessions` clients over `ticks` trace
// ticks. The same grammar as ParseFaultPlan, applied to sessions; the
// result feeds FleetOptions.Plan and Config.SessionChurn accepts the
// same specs.
func ParseSessionPlan(spec string, sessions, ticks int, interval Time, seed int64) (*FaultPlan, error) {
	return serve.ParseSessionPlan(spec, sessions, ticks, interval, seed)
}

// Virtual serving layer -------------------------------------------------

type (
	// VirtualFleet serves sessions as compact per-shard struct-of-arrays
	// state — no per-session object, no goroutine — with the exact
	// serving semantics of ClientFleet (filtering, resync, redirect,
	// migration, fidelity; the two are parity-tested). It implements the
	// run observers, so assign it to PushConfig.Observer (or
	// ResilienceConfig.Observer) like a ClientFleet. Populate admits a
	// synthetic population of millions without materializing clients;
	// AttachAll admits a concrete Client slice.
	VirtualFleet = vserve.Fleet
	// VirtualFleetOptions parameterizes a virtual fleet (cap, churn plan,
	// scenario, shard count, overflow ring, parallel delivery workers).
	VirtualFleetOptions = vserve.Options
	// VirtualStats extends ClientStats with shard count and measured
	// resident bytes per session (Outcome.VServe carries one).
	VirtualStats = vserve.Stats
	// VirtualSynthetic parameterizes a compact synthetic population —
	// the GenerateClients distribution without per-client objects.
	VirtualSynthetic = vserve.Synthetic
	// ScenarioSpec is a parsed scenario: flash crowds, correlated
	// regional failures, diurnal load waves (Config.Scenario grammar).
	ScenarioSpec = trace.ScenarioSpec
	// ScenarioPlan is a scenario scheduled over a concrete population:
	// per-session arrival/departure events plus repository faults.
	ScenarioPlan = trace.ScenarioPlan
	// ScenarioEvent is one session arrival or departure of a plan.
	ScenarioEvent = trace.ScenarioEvent
	// ScenarioFault is one scenario-driven repository failure.
	ScenarioFault = trace.ScenarioFault
	// PlacementIndex is the shared sharded nearest-k session placement
	// index: delay-bucketed candidate orders per home endpoint with an
	// optional consistent-hash overflow ring, making admission O(k)
	// instead of a linear scan. Both fleets place through it.
	PlacementIndex = place.Index
	// PlacementOptions parameterizes the index's overflow ring.
	PlacementOptions = place.Options
	// PlacementState is the live cluster view a placement consults.
	PlacementState = place.State
)

// NewVirtualFleet builds an empty virtual fleet over the repository
// population (ids 1..n, matching the network's endpoints). Populate or
// AttachAll the sessions, DeriveNeeds, build the overlay, Seed, run with
// the fleet as the observer, then Finalize.
func NewVirtualFleet(net *Network, repos []*Repository, opts VirtualFleetOptions) (*VirtualFleet, error) {
	return vserve.NewFleet(net, repos, opts)
}

// ParseScenario parses a scenario spec such as
// "flash:at=0.3,frac=0.5,burst=0.2", "regional:at=0.4,frac=0.25,rejoin=0.7"
// or "diurnal:waves=2,low=0.3". Empty and "none" return nil. The same
// grammar feeds Config.Scenario and the -scenario command flags.
func ParseScenario(spec string) (*ScenarioSpec, error) { return trace.ParseScenario(spec) }

// BuildScenario schedules a parsed scenario over a concrete population:
// deterministic per-session arrival/departure events (Pareto bursts,
// cosine waves) and correlated repository faults.
func BuildScenario(spec *ScenarioSpec, sessions, repos, ticks int, seed int64) (*ScenarioPlan, error) {
	return trace.BuildScenario(spec, sessions, repos, ticks, seed)
}

// NewPlacementIndex builds a placement index over the network's first
// `repos` endpoints.
func NewPlacementIndex(net *Network, repos int, opts PlacementOptions) *PlacementIndex {
	return place.New(net, repos, opts)
}

// PlacementKey hashes a session name to its stable placement key (FNV-1a).
func PlacementKey(name string) uint32 { return place.Key(name) }

// Query layer -----------------------------------------------------------

type (
	// Query is one continuous derived-data query: an operator (windowed
	// sum/avg/min/max aggregate, diff/ratio join, optional filter
	// predicate) over input items, with a client tolerance cQ on the
	// result. Query.Wants() is the tolerance allocation: the per-input
	// subscription that makes coherent inputs imply a coherent result.
	Query = query.Query
	// QueryKind is the query's combining operator.
	QueryKind = query.Kind
	// QueryPred is the optional Filter(pred) stage gating publication.
	QueryPred = query.Pred
	// QueryPlacement selects repository-side (default) or client-side
	// evaluation.
	QueryPlacement = query.Placement
	// QueryEval is a query's incremental evaluator: current input copies,
	// the window ring of per-tick aggregates, and eval/recompute counters.
	QueryEval = query.Eval
	// QueryServed is one query session served by a ClientFleet
	// (ClientFleet.AttachQueries / QuerySession / QuerySessions).
	QueryServed = serve.QuerySession
	// QueryOutcome is one query's measured result (fidelity, input floor,
	// message tallies); QueryServingStats aggregates the catalogue
	// (Outcome.Queries carries one when Config.Queries is set).
	QueryOutcome      = serve.QueryOutcome
	QueryServingStats = serve.QueryStats
)

// Query operators.
const (
	QuerySum   = query.Sum
	QueryAvg   = query.Avg
	QueryMin   = query.Min
	QueryMax   = query.Max
	QueryDiff  = query.Diff
	QueryRatio = query.Ratio
)

// Query placements.
const (
	QueryPlaceRepo   = query.PlaceRepo
	QueryPlaceClient = query.PlaceClient
)

// ParseQuery builds a query from its spec string, e.g.
// "avg(w=5;ITEM000,ITEM001,ITEM002)@0.05" or
// "diff(ITEM000,ITEM001)>0@0.1!client". The returned query has no Name;
// callers assign one. The same grammar feeds Config.Queries and the
// -query command flags.
func ParseQuery(spec string) (Query, error) { return query.Parse(spec) }

// ParseQueryList parses a list of specs and names them q0, q1, ...
func ParseQueryList(specs []string) ([]Query, error) { return query.ParseList(specs) }

// NewQueryEval builds the incremental evaluator for a validated query —
// the building block for custom runtimes; the live and netio runtimes
// embed one per query session (SubscribeQuery).
func NewQueryEval(q Query) *QueryEval { return query.NewEval(q) }
